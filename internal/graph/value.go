// Package graph implements the attributed multigraph data model of GraphQL
// (He & Singh, SIGMOD 2008, §3.1): graphs whose nodes, edges and the graph
// itself carry tuples — tagged lists of name/value pairs. Graphs are the
// basic unit of information; collections of graphs are the operands of the
// graph algebra.
package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the primitive attribute value types of the data model.
type Kind uint8

// Value kinds. Null is the zero Kind so that the zero Value is Null.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the kind name as used in error messages.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a dynamically typed attribute value. The zero Value is Null.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the absent value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is absent.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is valid only for KindInt values.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the value as a float64, coercing integers.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload. It is valid only for KindString values.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only for KindBool values.
func (v Value) AsBool() bool { return v.i != 0 }

// Truthy reports whether the value counts as true in a predicate context:
// true booleans, nonzero numbers and nonempty strings are truthy.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	}
	return false
}

// numeric reports whether the value is an int or a float.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are equal. Numeric values compare across
// int/float kinds; values of incomparable kinds are unequal (never an error).
func (v Value) Equal(w Value) bool {
	c, err := v.Compare(w)
	return err == nil && c == 0
}

// Compare orders two values: -1, 0 or +1. Numbers compare numerically across
// int/float kinds, strings lexicographically, booleans false<true. Comparing
// values of incompatible kinds (or nulls) is an error.
func (v Value) Compare(w Value) (int, error) {
	switch {
	case v.numeric() && w.numeric():
		if v.kind == KindInt && w.kind == KindInt {
			return cmpOrdered(v.i, w.i), nil
		}
		return cmpOrdered(v.AsFloat(), w.AsFloat()), nil
	case v.kind == KindString && w.kind == KindString:
		return strings.Compare(v.s, w.s), nil
	case v.kind == KindBool && w.kind == KindBool:
		return cmpOrdered(v.i, w.i), nil
	}
	return 0, fmt.Errorf("graph: cannot compare %s with %s", v.kind, w.kind)
}

func cmpOrdered[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders the value as it appears in the graph text format: strings
// are quoted, numbers and booleans are bare, null prints as "null".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		// Whole floats get a ".0" marker so the rendering reparses as a
		// float, not an int ("5.0/2" must not round-trip into "5/2").
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		if strings.IndexFunc(s, func(r rune) bool { return r != '-' && (r < '0' || r > '9') }) < 0 {
			s += ".0"
		}
		return s
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.i != 0)
	}
	return "?"
}

// Arith applies a binary arithmetic operator (+ - * /) to two values. String
// operands support + as concatenation. Integer arithmetic stays integral
// except division by a float or of non-multiples, which promotes to float.
func Arith(op byte, a, b Value) (Value, error) {
	if op == '+' && a.kind == KindString && b.kind == KindString {
		return String(a.s + b.s), nil
	}
	if !a.numeric() || !b.numeric() {
		return Null, fmt.Errorf("graph: arithmetic %q on %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case '+':
			return Int(a.i + b.i), nil
		case '-':
			return Int(a.i - b.i), nil
		case '*':
			return Int(a.i * b.i), nil
		case '/':
			if b.i == 0 {
				return Null, fmt.Errorf("graph: integer division by zero")
			}
			if a.i%b.i == 0 {
				return Int(a.i / b.i), nil
			}
			return Float(float64(a.i) / float64(b.i)), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case '+':
		return Float(x + y), nil
	case '-':
		return Float(x - y), nil
	case '*':
		return Float(x * y), nil
	case '/':
		if y == 0 {
			return Null, fmt.Errorf("graph: division by zero")
		}
		return Float(x / y), nil
	}
	return Null, fmt.Errorf("graph: unknown arithmetic operator %q", op)
}
