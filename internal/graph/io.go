package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The TSV format is a compact line-oriented exchange format for large
// labelled graphs (the evaluation datasets):
//
//	g <name> <directed:0|1>
//	v <id> <label>
//	e <from> <to>
//
// Node IDs must be dense and in order. It is far cheaper to parse than the
// full language syntax and is what cmd/gengraph emits.

// WriteTSV writes g in the TSV exchange format.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	dir := 0
	if g.Directed {
		dir = 1
	}
	if _, err := fmt.Fprintf(bw, "g\t%s\t%d\n", g.Name, dir); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if _, err := fmt.Fprintf(bw, "v\t%d\t%s\n", n.ID, n.Attrs.GetOr("label").AsString()); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e\t%d\t%d\n", e.From, e.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses a graph in the TSV exchange format.
func ReadTSV(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "g":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: tsv line %d: malformed graph header", lineNo)
			}
			g = New(fields[1])
			g.Directed = fields[2] == "1"
		case "v":
			if g == nil {
				return nil, fmt.Errorf("graph: tsv line %d: node before graph header", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: tsv line %d: malformed node", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != g.NumNodes() {
				return nil, fmt.Errorf("graph: tsv line %d: node IDs must be dense and ordered", lineNo)
			}
			g.AddNode("", TupleOf("", "label", fields[2]))
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: tsv line %d: edge before graph header", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: tsv line %d: malformed edge", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= g.NumNodes() || v >= g.NumNodes() {
				return nil, fmt.Errorf("graph: tsv line %d: bad edge endpoints", lineNo)
			}
			g.AddEdge("", NodeID(u), NodeID(v), nil)
		default:
			return nil, fmt.Errorf("graph: tsv line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: tsv: empty input")
	}
	return g, nil
}
