package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The TSV format is a compact line-oriented exchange format for large
// labelled graphs (the evaluation datasets):
//
//	g <name> <directed:0|1>
//	v <id> <label>
//	e <from> <to>
//
// Node IDs must be dense and in order. It is far cheaper to parse than the
// full language syntax and is what cmd/gengraph emits.

// WriteTSV writes g in the TSV exchange format.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	dir := 0
	if g.Directed {
		dir = 1
	}
	if _, err := fmt.Fprintf(bw, "g\t%s\t%d\n", g.Name, dir); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if _, err := fmt.Fprintf(bw, "v\t%d\t%s\n", n.ID, n.Attrs.GetOr("label").AsString()); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e\t%d\t%d\n", e.From, e.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses a graph in the TSV exchange format. Construction goes
// through the batch Builder, so malformed records reject the file with an
// error instead of aborting the process.
func ReadTSV(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var bld *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		// Only line endings are trimmed: a TrimSpace here would eat the
		// trailing tab of a record whose last field is empty (e.g. an empty
		// label), truncating the field count.
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "g":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: tsv line %d: malformed graph header", lineNo)
			}
			bld = NewBuilder(fields[1], fields[2] == "1")
		case "v":
			if bld == nil {
				return nil, fmt.Errorf("graph: tsv line %d: node before graph header", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: tsv line %d: malformed node", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != bld.NumNodes() {
				return nil, fmt.Errorf("graph: tsv line %d: node IDs must be dense and ordered", lineNo)
			}
			bld.AddNode("", TupleOf("", "label", fields[2]))
		case "e":
			if bld == nil {
				return nil, fmt.Errorf("graph: tsv line %d: edge before graph header", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: tsv line %d: malformed edge", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= bld.NumNodes() || v >= bld.NumNodes() {
				return nil, fmt.Errorf("graph: tsv line %d: bad edge endpoints", lineNo)
			}
			bld.AddEdge("", NodeID(u), NodeID(v), nil)
		default:
			return nil, fmt.Errorf("graph: tsv line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if bld == nil {
		return nil, fmt.Errorf("graph: tsv: empty input")
	}
	g, err := bld.Build()
	if err != nil {
		return nil, fmt.Errorf("graph: tsv: %w", err)
	}
	return g, nil
}
