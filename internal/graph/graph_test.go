package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTupleBasics(t *testing.T) {
	tp := NewTuple("author")
	tp.Set("name", String("A"))
	tp.Set("year", Int(2006))
	if tp.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tp.Len())
	}
	if v, ok := tp.Get("name"); !ok || v.AsString() != "A" {
		t.Errorf("Get(name) = %v,%v", v, ok)
	}
	if _, ok := tp.Get("missing"); ok {
		t.Error("Get(missing) should be absent")
	}
	tp.Set("name", String("B")) // replace keeps position
	if tp.At(0).Name != "name" || tp.At(0).Val.AsString() != "B" {
		t.Errorf("replace changed order: %v", tp.At(0))
	}
	want := `<author name="B", year=2006>`
	if tp.String() != want {
		t.Errorf("String() = %s, want %s", tp, want)
	}
}

func TestTupleNilSafety(t *testing.T) {
	var tp *Tuple
	if tp.Len() != 0 {
		t.Error("nil tuple Len should be 0")
	}
	if _, ok := tp.Get("x"); ok {
		t.Error("nil tuple Get should be absent")
	}
	if tp.Clone() != nil {
		t.Error("nil tuple Clone should be nil")
	}
	if tp.String() != "" {
		t.Error("nil tuple String should be empty")
	}
	if !tp.Equal(NewTuple("")) {
		t.Error("nil tuple should equal empty tuple")
	}
}

func TestTupleEqual(t *testing.T) {
	a := TupleOf("t", "x", 1, "y", "s")
	b := TupleOf("t", "y", "s", "x", 1) // order-insensitive
	c := TupleOf("u", "x", 1, "y", "s") // different tag
	d := TupleOf("t", "x", 2, "y", "s") // different value
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("a should differ from c and d")
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	a := TupleOf("", "x", 1)
	b := a.Clone()
	b.Set("x", Int(2))
	if a.GetOr("x").AsInt() != 1 {
		t.Error("Clone must not share storage")
	}
}

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New("G1")
	v1 := g.AddNode("v1", TupleOf("", "label", "A"))
	v2 := g.AddNode("v2", TupleOf("", "label", "B"))
	v3 := g.AddNode("v3", TupleOf("", "label", "C"))
	g.AddEdge("e1", v1, v2, nil)
	g.AddEdge("e2", v2, v3, nil)
	g.AddEdge("e3", v3, v1, nil)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := buildTriangle(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("size = %d/%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
	v1, ok := g.NodeByName("v1")
	if !ok {
		t.Fatal("v1 not found")
	}
	if g.Label(v1) != "A" {
		t.Errorf("Label(v1) = %q", g.Label(v1))
	}
	if g.Degree(v1) != 2 {
		t.Errorf("Degree(v1) = %d, want 2", g.Degree(v1))
	}
	v2, _ := g.NodeByName("v2")
	v3, _ := g.NodeByName("v3")
	if !g.HasEdgeBetween(v1, v2) || !g.HasEdgeBetween(v2, v1) {
		t.Error("undirected edge should be visible both ways")
	}
	if !g.HasEdgeBetween(v3, v1) {
		t.Error("edge v3-v1 missing")
	}
	if g.HasEdgeBetween(v1, v1) {
		t.Error("no self loop expected")
	}
}

func TestDirectedGraph(t *testing.T) {
	g := NewDirected("D")
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge("", a, b, nil)
	if !g.HasEdgeBetween(a, b) {
		t.Error("a->b missing")
	}
	if g.HasEdgeBetween(b, a) {
		t.Error("b->a should not exist in directed graph")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 0 {
		t.Errorf("out-degrees = %d,%d", g.Degree(a), g.Degree(b))
	}
	if len(g.InAdj(b)) != 1 {
		t.Errorf("in-degree(b) = %d, want 1", len(g.InAdj(b)))
	}
	if g.TotalDegree(b) != 1 {
		t.Errorf("TotalDegree(b) = %d, want 1", g.TotalDegree(b))
	}
}

func TestMultigraphAndSelfLoops(t *testing.T) {
	g := New("M")
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge("", a, b, nil)
	g.AddEdge("", a, b, nil)
	g.AddEdge("", a, a, nil)
	if len(g.EdgesBetween(a, b)) != 2 {
		t.Errorf("parallel edges = %d, want 2", len(g.EdgesBetween(a, b)))
	}
	if len(g.EdgesBetween(a, a)) != 1 {
		t.Errorf("self loops = %d, want 1", len(g.EdgesBetween(a, a)))
	}
	if g.Degree(a) != 3 { // b twice + self loop once
		t.Errorf("Degree(a) = %d, want 3", g.Degree(a))
	}
}

func TestDuplicateNamesRecordError(t *testing.T) {
	g := New("G")
	g.AddNode("v", nil)
	id := g.AddNode("v", nil)
	if g.Err() == nil {
		t.Fatal("duplicate node name should record a construction error")
	}
	// Construction stays usable: the second node exists under a unique name
	// with a dense ID, so bulk loaders can keep going and report at the end.
	if id != 1 || g.NumNodes() != 2 {
		t.Fatalf("after duplicate: id=%d nodes=%d, want 1 and 2", id, g.NumNodes())
	}
	if g.Node(0).Name == g.Node(1).Name {
		t.Error("duplicate node kept a colliding name")
	}
	if g.Clone().Err() == nil {
		t.Error("Clone must carry the construction error")
	}
}

func TestAddEdgeOutOfRangeRecordsError(t *testing.T) {
	g := New("G")
	a := g.AddNode("a", nil)
	if id := g.AddEdge("", a, 7, nil); id != NoEdge {
		t.Fatalf("out-of-range AddEdge = %d, want NoEdge", id)
	}
	if g.Err() == nil {
		t.Fatal("out-of-range AddEdge should record a construction error")
	}
	if g.NumEdges() != 0 {
		t.Errorf("bad edge was added: %d edges", g.NumEdges())
	}
}

func TestRenameNodeErrors(t *testing.T) {
	g := New("G")
	a := g.AddNode("a", nil)
	g.AddNode("b", nil)
	g.RenameNode(a, "b")
	if g.Err() == nil {
		t.Fatal("duplicate rename should record a construction error")
	}
	if g.Node(a).Name != "a" {
		t.Error("failed rename must leave the name unchanged")
	}
	g2 := New("G2")
	g2.RenameNode(5, "x")
	if g2.Err() == nil {
		t.Error("out-of-range rename should record a construction error")
	}
}

func TestTupleOfErrors(t *testing.T) {
	if err := TupleOf("", "k", struct{}{}).Err(); err == nil {
		t.Error("unsupported value type should record an error")
	}
	if err := TupleOf("", "dangling").Err(); err == nil {
		t.Error("dangling name should record an error")
	}
	if err := TupleOf("", 3, "v").Err(); err == nil {
		t.Error("non-string name should record an error")
	}
	if err := TupleOf("", "k", 1, "s", "x", "b", true, "f", 1.5).Err(); err != nil {
		t.Errorf("well-formed TupleOf recorded error: %v", err)
	}
	// Graphs absorb tuple errors when the tuple is attached.
	g := New("G")
	g.AddNode("v", TupleOf("", "k", struct{}{}))
	if g.Err() == nil {
		t.Error("attaching a malformed tuple should record a graph error")
	}
}

func TestBuilderAccumulatesErrors(t *testing.T) {
	b := NewBuilder("G", false)
	a := b.AddNode("a", nil)
	b.AddNode("a", nil)                  // duplicate node name
	b.AddEdge("", a, 9, nil)             // out-of-range endpoint
	b.AddNode("c", TupleOf("", "k", 'x')) // rune: unsupported value type
	b.RenameNode(42, "zz")               // out-of-range rename
	g, err := b.Build()
	if g != nil || err == nil {
		t.Fatalf("Build = %v, %v; want nil graph and joined errors", g, err)
	}
	msg := err.Error()
	for _, want := range []string{"duplicate node name", "out of range", "unsupported value type", "RenameNode"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q missing %q", msg, want)
		}
	}
}

func TestBuilderBuildsCleanGraph(t *testing.T) {
	b := NewBuilder("G", true)
	b.SetTuple(TupleOf("meta", "source", "test"))
	u := b.AddNode("u", TupleOf("", "label", "A"))
	v := b.AddNode("v", TupleOf("", "label", "B"))
	b.AddEdge("e", u, v, nil)
	b.RenameNode(v, "w")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed || g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("unexpected graph: %v", g)
	}
	if _, ok := g.NodeByName("w"); !ok {
		t.Error("rename lost")
	}
	if g.Attrs.GetOr("source").AsString() != "test" {
		t.Error("SetTuple lost")
	}
}

func TestAutoNames(t *testing.T) {
	g := New("G")
	a := g.AddNode("", nil)
	b := g.AddNode("", nil)
	g.AddEdge("", a, b, nil)
	if g.Node(a).Name == g.Node(b).Name {
		t.Error("auto names must be unique")
	}
	if _, ok := g.NodeByName(g.Node(a).Name); !ok {
		t.Error("auto name not registered")
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	if c.Signature() != g.Signature() {
		t.Fatal("clone signature differs")
	}
	v4 := c.AddNode("v4", TupleOf("", "label", "D"))
	c.AddEdge("", v4, 0, nil)
	c.Node(0).Attrs.Set("label", String("Z"))
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Error("mutating clone changed original structure")
	}
	if g.Label(0) != "A" {
		t.Error("mutating clone changed original attributes")
	}
}

func TestGraphString(t *testing.T) {
	g := buildTriangle(t)
	s := g.String()
	for _, want := range []string{"graph G1 {", `node v1 <label="A">;`, "edge e1 (v1, v2);"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestSignatureOrderInsensitive(t *testing.T) {
	g1 := New("G")
	a := g1.AddNode("a", nil)
	b := g1.AddNode("b", nil)
	g1.AddEdge("e", a, b, nil)

	g2 := New("G")
	b2 := g2.AddNode("b", nil)
	a2 := g2.AddNode("a", nil)
	g2.AddEdge("e", b2, a2, nil) // undirected: reversed endpoints

	if g1.Signature() != g2.Signature() {
		t.Errorf("signatures differ:\n%s\n---\n%s", g1.Signature(), g2.Signature())
	}
}

func TestTSVRoundtrip(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 3 || got.Name != "G1" {
		t.Fatalf("roundtrip lost data: %d/%d %q", got.NumNodes(), got.NumEdges(), got.Name)
	}
	for i := 0; i < 3; i++ {
		if got.Label(NodeID(i)) != g.Label(NodeID(i)) {
			t.Errorf("label %d = %q, want %q", i, got.Label(NodeID(i)), g.Label(NodeID(i)))
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	bad := []string{
		"",                          // empty
		"v\t0\tA",                   // node before header
		"g\tG\t0\nv\t5\tA",          // non-dense id
		"g\tG\t0\nv\t0\tA\ne\t0\t9", // endpoint out of range
		"x\t0",                      // unknown record
		"g\tG",                      // short header
	}
	for _, s := range bad {
		if _, err := ReadTSV(strings.NewReader(s)); err == nil {
			t.Errorf("ReadTSV(%q): want error", s)
		}
	}
}

// Property: a random graph survives a TSV roundtrip with identical structure.
func TestTSVRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		g := New("R")
		for i := 0; i < n; i++ {
			g.AddNode("", TupleOf("", "label", string(rune('A'+rng.Intn(5)))))
		}
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge("", NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), nil)
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			return false
		}
		got, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		return got.Signature() == g.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCollection(t *testing.T) {
	g1, g2 := buildTriangle(t), buildTriangle(t)
	g2.Name = "G2"
	c := NewCollection(g1, g2)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	only := c.Filter(func(g *Graph) bool { return g.Name == "G2" })
	if only.Len() != 1 || only[0].Name != "G2" {
		t.Error("Filter failed")
	}
	cl := c.Clone()
	cl[0].AddNode("extra", nil)
	if g1.NumNodes() != 3 {
		t.Error("Clone must deep-copy members")
	}
}
