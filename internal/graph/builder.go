package graph

import (
	"errors"
	"fmt"
)

// Builder is the batch-loader construction API: every mutator validates its
// arguments, accumulates descriptive errors instead of panicking or
// stopping, and Build returns them all at once. It is the right interface
// for bulk ingest of untrusted graph files (ReadBinary, ReadTSV, loaders
// over GADDI-style datasets), where a single malformed record must reject
// the graph without aborting the process — and without hiding the other
// errors in the same file.
//
// A Builder is single-goroutine; methods must not be called concurrently.
// After Build the builder must not be reused.
type Builder struct {
	g    *Graph
	errs []error
	ops  int
}

// NewBuilder returns a builder for a graph with the given name and
// orientation.
func NewBuilder(name string, directed bool) *Builder {
	g := New(name)
	g.Directed = directed
	return &Builder{g: g}
}

// fail records one accumulated error.
func (b *Builder) fail(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("graph: builder %q op %d: %s",
		b.g.Name, b.ops, fmt.Sprintf(format, args...)))
}

// absorbTuple records a malformed attribute tuple for the given element.
func (b *Builder) absorbTuple(where string, attrs *Tuple) {
	if err := attrs.Err(); err != nil {
		b.errs = append(b.errs, fmt.Errorf("graph: builder %q op %d: %s: %w", b.g.Name, b.ops, where, err))
	}
}

// AddNode appends a node. A duplicate name is recorded as an error; the
// node is still added (under a uniquified name) so later AddEdge calls keep
// referring to dense IDs and every error in a batch is reported.
func (b *Builder) AddNode(name string, attrs *Tuple) NodeID {
	b.ops++
	if name != "" {
		if _, dup := b.g.nodeByName[name]; dup {
			b.fail("duplicate node name %q", name)
		}
	}
	b.absorbTuple("node "+name, attrs)
	id := b.g.AddNode(name, attrs)
	b.g.err = nil // reported above, with position
	return id
}

// AddEdge appends an edge. Out-of-range endpoints and duplicate names are
// recorded as errors; a bad-endpoint edge is skipped and NoEdge returned.
func (b *Builder) AddEdge(name string, from, to NodeID, attrs *Tuple) EdgeID {
	b.ops++
	if from < 0 || to < 0 || int(from) >= b.g.NumNodes() || int(to) >= b.g.NumNodes() {
		b.fail("edge %q endpoints (%d,%d) out of range (%d nodes)", name, from, to, b.g.NumNodes())
		return NoEdge
	}
	if name != "" {
		if _, dup := b.g.edgeByName[name]; dup {
			b.fail("duplicate edge name %q", name)
		}
	}
	b.absorbTuple("edge "+name, attrs)
	id := b.g.AddEdge(name, from, to, attrs)
	b.g.err = nil
	return id
}

// RenameNode changes a node's variable name; out-of-range IDs and duplicate
// names are recorded as errors and leave the graph unchanged.
func (b *Builder) RenameNode(id NodeID, name string) {
	b.ops++
	if id < 0 || int(id) >= b.g.NumNodes() {
		b.fail("RenameNode(%d) out of range (%d nodes)", id, b.g.NumNodes())
		return
	}
	if _, dup := b.g.nodeByName[name]; dup && b.g.nodes[id].Name != name {
		b.fail("duplicate node name %q", name)
		return
	}
	b.g.RenameNode(id, name)
	b.g.err = nil
}

// SetTuple sets the graph's own attribute tuple, recording any tuple
// construction error (e.g. a TupleOf value-type failure).
func (b *Builder) SetTuple(attrs *Tuple) {
	b.ops++
	b.absorbTuple("graph attrs", attrs)
	b.g.Attrs = attrs
}

// NumNodes returns the number of nodes added so far, so streaming loaders
// can validate edge endpoints against the running count.
func (b *Builder) NumNodes() int { return b.g.NumNodes() }

// Err returns the errors accumulated so far, joined, or nil. Loaders that
// want to abort early on the first bad record can poll it between ops.
func (b *Builder) Err() error { return errors.Join(b.errs...) }

// Build returns the constructed graph, or nil and the joined accumulated
// errors if any mutator failed.
func (b *Builder) Build() (*Graph, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	return b.g, nil
}
