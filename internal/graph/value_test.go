package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "null"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{String("hi"), KindString, `"hi"`},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.0), Int(2), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareIncompatible(t *testing.T) {
	bad := [][2]Value{
		{Int(1), String("1")},
		{Bool(true), Int(1)},
		{Null, Int(0)},
		{String("x"), Bool(true)},
	}
	for _, p := range bad {
		if _, err := p[0].Compare(p[1]); err == nil {
			t.Errorf("Compare(%v,%v): want error", p[0], p[1])
		}
	}
}

func TestValueEqualAcrossNumericKinds(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(String("3")) {
		t.Error("Int(3) should not equal String(\"3\")")
	}
	if !Null.Equal(Null) == false {
		// Null compares with error, hence unequal — document the behaviour.
		t.Log("null != null by design (SQL-like)")
	}
}

func TestValueTruthy(t *testing.T) {
	truthy := []Value{Bool(true), Int(1), Int(-1), Float(0.5), String("x")}
	falsy := []Value{Bool(false), Int(0), Float(0), String(""), Null}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   byte
		a, b Value
		want Value
	}{
		{'+', Int(2), Int(3), Int(5)},
		{'-', Int(2), Int(3), Int(-1)},
		{'*', Int(4), Int(3), Int(12)},
		{'/', Int(6), Int(3), Int(2)},
		{'/', Int(7), Int(2), Float(3.5)},
		{'+', Float(1.5), Int(1), Float(2.5)},
		{'+', String("ab"), String("cd"), String("abcd")},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("Arith(%c,%v,%v): %v", c.op, c.a, c.b, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("Arith(%c,%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith('/', Int(1), Int(0)); err == nil {
		t.Error("integer division by zero: want error")
	}
	if _, err := Arith('/', Float(1), Float(0)); err == nil {
		t.Error("float division by zero: want error")
	}
	if _, err := Arith('+', Int(1), String("x")); err == nil {
		t.Error("int+string: want error")
	}
	if _, err := Arith('-', String("a"), String("b")); err == nil {
		t.Error("string-string: want error")
	}
}

// Property: Compare is antisymmetric and Equal is consistent with Compare==0
// over random int/float values.
func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64, fa, fb float64, pick uint8) bool {
		var x, y Value
		switch pick % 4 {
		case 0:
			x, y = Int(a), Int(b)
		case 1:
			x, y = Int(a), Float(fb)
		case 2:
			x, y = Float(fa), Int(b)
		default:
			x, y = Float(fa), Float(fb)
		}
		c1, err1 := x.Compare(y)
		c2, err2 := y.Compare(x)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2 && (c1 == 0) == x.Equal(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: integer addition via Arith matches int64 addition.
func TestArithAddProperty(t *testing.T) {
	f := func(a, b int32) bool {
		got, err := Arith('+', Int(int64(a)), Int(int64(b)))
		return err == nil && got.AsInt() == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStringQuoting(t *testing.T) {
	v := String(`he said "hi"`)
	if !strings.Contains(v.String(), `\"hi\"`) {
		t.Errorf("String() should quote internal quotes: %s", v)
	}
}

func TestFloatStringKeepsFloatMarker(t *testing.T) {
	// Whole floats must not render as bare integers, or a rendered
	// expression like "5.0/2" reparses as integer division (found by
	// expr.FuzzEval).
	for _, tc := range []struct {
		f    float64
		want string
	}{
		{5.0, "5.0"},
		{-3.0, "-3.0"},
		{2.5, "2.5"},
		{1e-05, "1e-05"},
		{1e21, "1e+21"},
	} {
		if got := Float(tc.f).String(); got != tc.want {
			t.Errorf("Float(%v).String() = %q, want %q", tc.f, got, tc.want)
		}
	}
}
