package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within one graph; IDs are dense, starting at 0.
type NodeID int32

// EdgeID identifies an edge within one graph; IDs are dense, starting at 0.
type EdgeID int32

// NoNode is the sentinel for "no node".
const NoNode NodeID = -1

// NoEdge is the sentinel for "no edge"; AddEdge returns it when the
// endpoints are out of range and the edge cannot be added.
const NoEdge EdgeID = -1

// Node is a vertex with an optional variable name and an attribute tuple.
type Node struct {
	ID    NodeID
	Name  string
	Attrs *Tuple
}

// Edge connects two nodes. For undirected graphs From/To record declaration
// order but carry no orientation semantics.
type Edge struct {
	ID    EdgeID
	Name  string
	From  NodeID
	To    NodeID
	Attrs *Tuple
}

// Half is one adjacency entry: the incident edge and the node at its far end.
type Half struct {
	Edge EdgeID
	To   NodeID
}

// Graph is an attributed multigraph. Nodes and edges are stored densely and
// addressed by ID; adjacency lists support the matching kernels. The zero
// value is not usable; call New.
type Graph struct {
	Name     string
	Directed bool
	Attrs    *Tuple

	nodes []Node
	edges []Edge
	// adj[v] lists every edge incident to v together with the opposite
	// endpoint. For directed graphs adj holds outgoing edges and radj
	// incoming ones; for undirected graphs adj holds both directions and
	// radj is nil.
	adj  [][]Half
	radj [][]Half

	nodeByName map[string]NodeID
	edgeByName map[string]EdgeID
	// pairs maps an ordered endpoint pair to the edges between them. For
	// undirected graphs the pair is stored with min endpoint first.
	pairs map[[2]NodeID][]EdgeID

	// err records the first construction error (duplicate name, bad edge
	// endpoint, malformed attribute tuple). Mutators keep the graph usable
	// after an error — names are uniquified, bad edges skipped — so bulk
	// loaders can accumulate and report via Err instead of aborting the
	// process. Use Builder when every error must be reported.
	err error
}

// New returns an empty undirected graph with the given name.
func New(name string) *Graph {
	return &Graph{
		Name:       name,
		nodeByName: make(map[string]NodeID),
		edgeByName: make(map[string]EdgeID),
		pairs:      make(map[[2]NodeID][]EdgeID),
	}
}

// NewDirected returns an empty directed graph with the given name.
func NewDirected(name string) *Graph {
	g := New(name)
	g.Directed = true
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID. The pointer stays valid until the
// next AddNode.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Edge returns the edge with the given ID. The pointer stays valid until the
// next AddEdge.
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// NodeByName looks a node up by its variable name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.nodeByName[name]
	return id, ok
}

// EdgeByName looks an edge up by its variable name.
func (g *Graph) EdgeByName(name string) (EdgeID, bool) {
	id, ok := g.edgeByName[name]
	return id, ok
}

// Err returns the first construction error recorded by AddNode, AddEdge,
// RenameNode or an absorbed attribute tuple, or nil. Bulk loaders
// (ReadBinary, ReadTSV, ParseGraph) check it before handing a graph out;
// programmatic construction may ignore it (a recorded error there is a
// call-site bug that tests catch via Err assertions).
func (g *Graph) Err() error { return g.err }

// setErr records the first construction error.
func (g *Graph) setErr(err error) {
	if g.err == nil {
		g.err = err
	}
}

// absorbTupleErr folds a malformed attribute tuple (e.g. a TupleOf call
// with an unsupported value type) into the graph's construction error.
func (g *Graph) absorbTupleErr(where string, attrs *Tuple) {
	if err := attrs.Err(); err != nil {
		g.setErr(fmt.Errorf("graph: %s in graph %q: %w", where, g.Name, err))
	}
}

// uniquify returns name, suffixed if already taken, so construction can
// continue after a duplicate-name error with dense IDs and unique names.
func (g *Graph) uniquify(name string, taken map[string]NodeID, takenE map[string]EdgeID) string {
	for i := 2; ; i++ {
		c := fmt.Sprintf("%s_dup%d", name, i)
		_, n := taken[c]
		_, e := takenE[c]
		if !n && !e {
			return c
		}
	}
}

// AddNode appends a node. An empty name is auto-generated. A duplicate name
// records a construction error on the graph (see Err) and the node is added
// under a uniquified name, keeping IDs dense (names are variables and must
// be unique within a graph).
func (g *Graph) AddNode(name string, attrs *Tuple) NodeID {
	id := NodeID(len(g.nodes))
	if name == "" {
		name = fmt.Sprintf("_n%d", id)
	}
	if _, dup := g.nodeByName[name]; dup {
		g.setErr(fmt.Errorf("graph: duplicate node name %q in graph %q", name, g.Name))
		name = g.uniquify(name, g.nodeByName, nil)
	}
	g.absorbTupleErr("node "+name, attrs)
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Attrs: attrs})
	g.adj = append(g.adj, nil)
	if g.Directed {
		g.radj = append(g.radj, nil)
	}
	g.nodeByName[name] = id
	return id
}

// AddEdge appends an edge between existing nodes. An empty name is
// auto-generated. Self-loops and parallel edges are permitted (multigraph).
// Out-of-range endpoints record a construction error (see Err) and return
// NoEdge; a duplicate name records an error and uniquifies.
func (g *Graph) AddEdge(name string, from, to NodeID, attrs *Tuple) EdgeID {
	if int(from) >= len(g.nodes) || int(to) >= len(g.nodes) || from < 0 || to < 0 {
		g.setErr(fmt.Errorf("graph: AddEdge(%d,%d) out of range in graph %q", from, to, g.Name))
		return NoEdge
	}
	id := EdgeID(len(g.edges))
	if name == "" {
		name = fmt.Sprintf("_e%d", id)
	}
	if _, dup := g.edgeByName[name]; dup {
		g.setErr(fmt.Errorf("graph: duplicate edge name %q in graph %q", name, g.Name))
		name = g.uniquify(name, nil, g.edgeByName)
	}
	g.absorbTupleErr("edge "+name, attrs)
	g.edges = append(g.edges, Edge{ID: id, Name: name, From: from, To: to, Attrs: attrs})
	g.edgeByName[name] = id
	g.adj[from] = append(g.adj[from], Half{Edge: id, To: to})
	if g.Directed {
		g.radj[to] = append(g.radj[to], Half{Edge: id, To: from})
	} else if from != to {
		g.adj[to] = append(g.adj[to], Half{Edge: id, To: from})
	}
	g.pairs[g.pairKey(from, to)] = append(g.pairs[g.pairKey(from, to)], id)
	return id
}

func (g *Graph) pairKey(u, v NodeID) [2]NodeID {
	if !g.Directed && u > v {
		u, v = v, u
	}
	return [2]NodeID{u, v}
}

// Adj returns the adjacency list of v: outgoing edges for directed graphs,
// all incident edges for undirected ones. The slice must not be modified.
func (g *Graph) Adj(v NodeID) []Half { return g.adj[v] }

// InAdj returns the incoming adjacency of v in a directed graph; for
// undirected graphs it equals Adj.
func (g *Graph) InAdj(v NodeID) []Half {
	if g.Directed {
		return g.radj[v]
	}
	return g.adj[v]
}

// Degree returns the size of v's adjacency list (out-degree when directed).
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// TotalDegree returns in+out degree for directed graphs, degree otherwise.
func (g *Graph) TotalDegree(v NodeID) int {
	if g.Directed {
		return len(g.adj[v]) + len(g.radj[v])
	}
	return len(g.adj[v])
}

// EdgesBetween returns the IDs of edges from u to v (any orientation for
// undirected graphs). The slice must not be modified.
func (g *Graph) EdgesBetween(u, v NodeID) []EdgeID {
	return g.pairs[g.pairKey(u, v)]
}

// HasEdgeBetween reports whether at least one edge joins u to v.
func (g *Graph) HasEdgeBetween(u, v NodeID) bool {
	return len(g.pairs[g.pairKey(u, v)]) > 0
}

// Label returns the node's "label" attribute as a string; evaluation graphs
// (PPI, synthetic) carry a single string label per node.
func (g *Graph) Label(v NodeID) string {
	return g.nodes[v].Attrs.GetOr("label").AsString()
}

// Clone returns a deep copy of the graph, including attribute tuples.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:       g.Name,
		Directed:   g.Directed,
		Attrs:      g.Attrs.Clone(),
		err:        g.err,
		nodes:      make([]Node, len(g.nodes)),
		edges:      make([]Edge, len(g.edges)),
		adj:        make([][]Half, len(g.adj)),
		nodeByName: make(map[string]NodeID, len(g.nodeByName)),
		edgeByName: make(map[string]EdgeID, len(g.edgeByName)),
		pairs:      make(map[[2]NodeID][]EdgeID, len(g.pairs)),
	}
	for i, n := range g.nodes {
		c.nodes[i] = Node{ID: n.ID, Name: n.Name, Attrs: n.Attrs.Clone()}
		c.nodeByName[n.Name] = n.ID
	}
	for i, e := range g.edges {
		c.edges[i] = Edge{ID: e.ID, Name: e.Name, From: e.From, To: e.To, Attrs: e.Attrs.Clone()}
		c.edgeByName[e.Name] = e.ID
	}
	for i, a := range g.adj {
		c.adj[i] = append([]Half(nil), a...)
	}
	if g.Directed {
		c.radj = make([][]Half, len(g.radj))
		for i, a := range g.radj {
			c.radj[i] = append([]Half(nil), a...)
		}
	}
	for k, v := range g.pairs {
		c.pairs[k] = append([]EdgeID(nil), v...)
	}
	return c
}

// Nodes returns the node slice for read-only iteration.
func (g *Graph) Nodes() []Node { return g.nodes }

// Edges returns the edge slice for read-only iteration.
func (g *Graph) Edges() []Edge { return g.edges }

// RenameNode changes a node's variable name, keeping uniqueness. An
// out-of-range ID or a name already taken by another node records a
// construction error (see Err) and leaves the graph unchanged.
func (g *Graph) RenameNode(id NodeID, name string) {
	if id < 0 || int(id) >= len(g.nodes) {
		g.setErr(fmt.Errorf("graph: RenameNode(%d) out of range in graph %q", id, g.Name))
		return
	}
	if g.nodes[id].Name == name {
		return
	}
	if _, dup := g.nodeByName[name]; dup {
		g.setErr(fmt.Errorf("graph: duplicate node name %q in graph %q", name, g.Name))
		return
	}
	delete(g.nodeByName, g.nodes[id].Name)
	g.nodes[id].Name = name
	g.nodeByName[name] = id
}

// String renders the graph in the language's text syntax (Figure 4.3/4.7
// style); the output round-trips through the parser.
func (g *Graph) String() string {
	var b strings.Builder
	b.WriteString("graph")
	if g.Name != "" {
		b.WriteByte(' ')
		b.WriteString(g.Name)
	}
	if s := g.Attrs.String(); s != "" {
		b.WriteByte(' ')
		b.WriteString(s)
	}
	b.WriteString(" {\n")
	for _, n := range g.nodes {
		b.WriteString("  node ")
		b.WriteString(n.Name)
		if s := n.Attrs.String(); s != "" {
			b.WriteByte(' ')
			b.WriteString(s)
		}
		b.WriteString(";\n")
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  edge %s (%s, %s)", e.Name, g.nodes[e.From].Name, g.nodes[e.To].Name)
		if s := e.Attrs.String(); s != "" {
			b.WriteByte(' ')
			b.WriteString(s)
		}
		b.WriteString(";\n")
	}
	b.WriteString("}")
	return b.String()
}

// Signature returns an order-insensitive structural+attribute fingerprint
// used by tests to compare graphs up to node/edge declaration order (not up
// to isomorphism). Two graphs with equal signatures have the same named
// nodes, edges and attributes.
func (g *Graph) Signature() string {
	lines := make([]string, 0, len(g.nodes)+len(g.edges)+1)
	for _, n := range g.nodes {
		lines = append(lines, "n "+n.Name+" "+n.Attrs.String())
	}
	for _, e := range g.edges {
		u, v := g.nodes[e.From].Name, g.nodes[e.To].Name
		if !g.Directed && u > v {
			u, v = v, u
		}
		lines = append(lines, "e "+u+"-"+v+" "+e.Attrs.String())
	}
	sort.Strings(lines)
	dir := "u"
	if g.Directed {
		dir = "d"
	}
	return dir + " " + g.Attrs.String() + "\n" + strings.Join(lines, "\n")
}
