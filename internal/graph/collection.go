package graph

// Collection is an ordered collection of graphs — the operand type of every
// graph-algebra operator. Unlike a relation's tuples, member graphs need not
// share structure or attributes (§3.1).
type Collection []*Graph

// NewCollection builds a collection from the given graphs.
func NewCollection(gs ...*Graph) Collection { return Collection(gs) }

// Len returns the number of graphs.
func (c Collection) Len() int { return len(c) }

// Append returns the collection extended with g.
func (c Collection) Append(g *Graph) Collection { return append(c, g) }

// Clone deep-copies every member graph.
func (c Collection) Clone() Collection {
	out := make(Collection, len(c))
	for i, g := range c {
		out[i] = g.Clone()
	}
	return out
}

// Filter returns the members for which keep returns true.
func (c Collection) Filter(keep func(*Graph) bool) Collection {
	var out Collection
	for _, g := range c {
		if keep(g) {
			out = append(out, g)
		}
	}
	return out
}
