package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The binary format serializes fully-attributed graphs and collections —
// the physical-storage substrate §7 lists as future work. Layout (all
// integers varint-encoded, strings length-prefixed):
//
//	magic "GQLB" version(1)
//	graphCount
//	per graph: name, directed(1), attrs, nodeCount, {name, attrs}...,
//	           edgeCount, {name, from, to, attrs}...
//	per tuple: tag, attrCount, {name, kind, payload}...
//
// The format round-trips every Value kind and preserves declaration order.

const (
	binaryMagic   = "GQLB"
	binaryVersion = 1
)

type binWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (b *binWriter) uvarint(v uint64) {
	if b.err != nil {
		return
	}
	n := binary.PutUvarint(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:n])
}

func (b *binWriter) varint(v int64) {
	if b.err != nil {
		return
	}
	n := binary.PutVarint(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:n])
}

func (b *binWriter) str(s string) {
	b.uvarint(uint64(len(s)))
	if b.err == nil {
		_, b.err = b.w.WriteString(s)
	}
}

func (b *binWriter) byte(v byte) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}

func (b *binWriter) tuple(t *Tuple) {
	if t == nil {
		b.byte(0)
		return
	}
	b.byte(1)
	b.str(t.Tag)
	b.uvarint(uint64(t.Len()))
	for i := 0; i < t.Len(); i++ {
		a := t.At(i)
		b.str(a.Name)
		b.byte(byte(a.Val.Kind()))
		switch a.Val.Kind() {
		case KindInt:
			b.varint(a.Val.AsInt())
		case KindFloat:
			b.uvarint(math.Float64bits(a.Val.AsFloat()))
		case KindString:
			b.str(a.Val.AsString())
		case KindBool:
			if a.Val.AsBool() {
				b.byte(1)
			} else {
				b.byte(0)
			}
		}
	}
}

// WriteTuple appends one tuple (possibly nil) to w in the GQLB tuple
// encoding. It is the embeddable form of the codec: the store's WAL frames
// mutation attributes with it. The caller owns flushing w.
func WriteTuple(w *bufio.Writer, t *Tuple) error {
	bw := &binWriter{w: w}
	bw.tuple(t)
	return bw.err
}

// ReadTuple decodes one tuple written by WriteTuple from r. Reading
// through the caller's bufio.Reader keeps the stream position exact, so a
// tuple can sit between other fields of an enclosing record.
func ReadTuple(r *bufio.Reader) (*Tuple, error) {
	br := &binReader{r: r}
	return br.tuple()
}

// WriteBinary serializes a collection (use a one-element collection for a
// single graph).
func WriteBinary(w io.Writer, c Collection) error {
	bw := &binWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		return err
	}
	bw.byte(binaryVersion)
	bw.uvarint(uint64(len(c)))
	for _, g := range c {
		bw.str(g.Name)
		if g.Directed {
			bw.byte(1)
		} else {
			bw.byte(0)
		}
		bw.tuple(g.Attrs)
		bw.uvarint(uint64(g.NumNodes()))
		for _, n := range g.Nodes() {
			bw.str(n.Name)
			bw.tuple(n.Attrs)
		}
		bw.uvarint(uint64(g.NumEdges()))
		for _, e := range g.Edges() {
			bw.str(e.Name)
			bw.uvarint(uint64(e.From))
			bw.uvarint(uint64(e.To))
			bw.tuple(e.Attrs)
		}
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

type binReader struct {
	r *bufio.Reader
}

func (b *binReader) uvarint() (uint64, error) { return binary.ReadUvarint(b.r) }
func (b *binReader) varint() (int64, error)   { return binary.ReadVarint(b.r) }

func (b *binReader) str() (string, error) {
	n, err := b.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("graph: binary: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (b *binReader) byte() (byte, error) { return b.r.ReadByte() }

func (b *binReader) tuple() (*Tuple, error) {
	present, err := b.byte()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	tag, err := b.str()
	if err != nil {
		return nil, err
	}
	t := NewTuple(tag)
	n, err := b.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("graph: binary: implausible attribute count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		name, err := b.str()
		if err != nil {
			return nil, err
		}
		kind, err := b.byte()
		if err != nil {
			return nil, err
		}
		var v Value
		switch Kind(kind) {
		case KindNull:
			v = Null
		case KindInt:
			x, err := b.varint()
			if err != nil {
				return nil, err
			}
			v = Int(x)
		case KindFloat:
			bits, err := b.uvarint()
			if err != nil {
				return nil, err
			}
			v = Float(math.Float64frombits(bits))
		case KindString:
			s, err := b.str()
			if err != nil {
				return nil, err
			}
			v = String(s)
		case KindBool:
			x, err := b.byte()
			if err != nil {
				return nil, err
			}
			v = Bool(x != 0)
		default:
			return nil, fmt.Errorf("graph: binary: unknown value kind %d", kind)
		}
		t.Set(name, v)
	}
	return t, nil
}

// ReadBinary deserializes a collection written by WriteBinary.
func ReadBinary(r io.Reader) (Collection, error) {
	br := &binReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: binary: bad magic %q", magic)
	}
	ver, err := br.byte()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("graph: binary: unsupported version %d", ver)
	}
	count, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if count > 1<<26 {
		return nil, fmt.Errorf("graph: binary: implausible graph count %d", count)
	}
	// Cap the pre-allocation: the count is attacker-controlled and each graph
	// still has to be parsed, so a huge claimed count must not reserve
	// memory before any bytes back it up.
	capHint := count
	if capHint > 1024 {
		capHint = 1024
	}
	out := make(Collection, 0, capHint)
	for gi := uint64(0); gi < count; gi++ {
		name, err := br.str()
		if err != nil {
			return nil, err
		}
		dir, err := br.byte()
		if err != nil {
			return nil, err
		}
		// Construction goes through the batch Builder: malformed records
		// (duplicate names, bad endpoints) accumulate and reject the file
		// with every offending op reported, instead of aborting the process.
		bld := NewBuilder(name, dir != 0)
		attrs, err := br.tuple()
		if err != nil {
			return nil, err
		}
		if attrs != nil {
			bld.SetTuple(attrs)
		}
		nNodes, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		if nNodes > 1<<30 {
			return nil, fmt.Errorf("graph: binary: implausible node count %d", nNodes)
		}
		for i := uint64(0); i < nNodes; i++ {
			nm, err := br.str()
			if err != nil {
				return nil, err
			}
			attrs, err := br.tuple()
			if err != nil {
				return nil, err
			}
			bld.AddNode(nm, attrs)
		}
		nEdges, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		if nEdges > 1<<31 {
			return nil, fmt.Errorf("graph: binary: implausible edge count %d", nEdges)
		}
		for i := uint64(0); i < nEdges; i++ {
			nm, err := br.str()
			if err != nil {
				return nil, err
			}
			from, err := br.uvarint()
			if err != nil {
				return nil, err
			}
			to, err := br.uvarint()
			if err != nil {
				return nil, err
			}
			attrs, err := br.tuple()
			if err != nil {
				return nil, err
			}
			if from >= nNodes || to >= nNodes {
				return nil, fmt.Errorf("graph: binary: edge endpoint out of range")
			}
			bld.AddEdge(nm, NodeID(from), NodeID(to), attrs)
		}
		g, err := bld.Build()
		if err != nil {
			return nil, fmt.Errorf("graph: binary: %w", err)
		}
		out = append(out, g)
	}
	return out, nil
}
