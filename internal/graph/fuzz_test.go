package graph

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedCollection builds a small fully-featured collection exercising
// every Value kind, tags, directedness and multi-edges — the seed for the
// binary-format fuzzer.
func fuzzSeedCollection() Collection {
	g1 := New("G1")
	a := g1.AddNode("a", TupleOf("person", "name", "Ann", "age", int64(30)))
	b := g1.AddNode("b", TupleOf("person", "name", "Bob", "score", 1.5))
	g1.AddEdge("e1", a, b, TupleOf("knows", "since", int64(1999)))
	g1.AddEdge("", a, b, nil)
	g1.Attrs = TupleOf("meta", "ok", true)

	g2 := NewDirected("G2")
	x := g2.AddNode("x", nil)
	g2.AddEdge("loop", x, x, nil)
	return Collection{g1, g2}
}

// FuzzReadBinary asserts the binary reader's total-function contract over
// arbitrary bytes: parse or error, never panic, never accept a graph with a
// pending construction error. Accepted inputs must re-serialize and re-read
// (round-trip stability).
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, fuzzSeedCollection()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GQLB"))
	f.Add([]byte("GQLB\x01\x00"))
	// Truncations hit every mid-record error path.
	for i := 0; i < buf.Len(); i += 7 {
		f.Add(buf.Bytes()[:i])
	}
	// Header claiming 2^26 graphs with no bytes behind it: the allocation
	// cap regression (a huge claimed count must not reserve memory).
	f.Add([]byte("GQLB\x01\x80\x80\x80\x80\x40"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		c, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, g := range c {
			if g == nil {
				t.Fatalf("graph %d is nil without error", i)
			}
			if gerr := g.Err(); gerr != nil {
				t.Fatalf("graph %d accepted with pending error: %v", i, gerr)
			}
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, c); err != nil {
			t.Fatalf("re-serialize accepted collection: %v", err)
		}
		if _, err := ReadBinary(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round-trip re-read failed: %v", err)
		}
	})
}

// FuzzReadTSV asserts the same contract for the TSV exchange reader.
func FuzzReadTSV(f *testing.F) {
	f.Add("g\tG\t0\nv\t0\tA\nv\t1\tB\ne\t0\t1\n")
	f.Add("g\tG\t1\nv\t0\tA\ne\t0\t0\n")
	f.Add("# comment\n\ng\tG\t0\n")
	f.Add("v\t0\tA\n")
	f.Add("g\tG\t0\nv\t1\tA\n")
	f.Add("g\tG\t0\nv\t0\tA\ne\t0\t9\n")
	f.Add("e\t-1\t-2\n")
	f.Add("g\tG\t0\nx\tjunk\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<18 {
			t.Skip("oversized input")
		}
		g, err := ReadTSV(strings.NewReader(src))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph without error")
		}
		if gerr := g.Err(); gerr != nil {
			t.Fatalf("graph accepted with pending error: %v", gerr)
		}
		// Accepted graphs round-trip through the writer and reader.
		var out bytes.Buffer
		if err := WriteTSV(&out, g); err != nil {
			t.Fatalf("re-serialize accepted graph: %v", err)
		}
		g2, err := ReadTSV(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round-trip re-read failed: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip changed size: %d/%d nodes, %d/%d edges",
				g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
		}
	})
}
