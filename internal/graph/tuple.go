package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is one name/value pair of a tuple.
type Attr struct {
	Name string
	Val  Value
}

// Tuple is an ordered list of name/value pairs with an optional tag denoting
// the tuple type (§3.1). Tuples annotate nodes, edges and graphs. Attribute
// order is preserved for printing; lookup by name is constant-time.
type Tuple struct {
	Tag   string
	attrs []Attr
	index map[string]int
	// err records a malformed TupleOf call (unsupported value type, dangling
	// pair); graphs absorb it into their own construction error on attach.
	err error
}

// Err returns the construction error recorded by TupleOf, or nil. A nil
// tuple has no error.
func (t *Tuple) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// NewTuple returns an empty tuple with the given tag. An empty tag means the
// tuple is untyped.
func NewTuple(tag string) *Tuple {
	return &Tuple{Tag: tag}
}

// TupleOf builds a tuple from alternating name, value pairs; convenient in
// tests and generators. A non-string name, an unsupported value type or a
// dangling trailing name records an error on the tuple (see Err) and the
// offending pair is skipped; graphs absorb the error when the tuple is
// attached, and Builder.Build surfaces it.
func TupleOf(tag string, pairs ...any) *Tuple {
	t := NewTuple(tag)
	if len(pairs)%2 != 0 {
		t.err = fmt.Errorf("graph: TupleOf: dangling name without a value")
	}
	for i := 0; i+1 < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			t.setErr(fmt.Errorf("graph: TupleOf: attribute name %v is not a string", pairs[i]))
			continue
		}
		switch v := pairs[i+1].(type) {
		case Value:
			t.Set(name, v)
		case int:
			t.Set(name, Int(int64(v)))
		case int64:
			t.Set(name, Int(v))
		case float64:
			t.Set(name, Float(v))
		case string:
			t.Set(name, String(v))
		case bool:
			t.Set(name, Bool(v))
		default:
			t.setErr(fmt.Errorf("graph: TupleOf: unsupported value type %T for attribute %s", pairs[i+1], name))
		}
	}
	return t
}

// setErr records the first construction error.
func (t *Tuple) setErr(err error) {
	if t.err == nil {
		t.err = err
	}
}

// Len returns the number of attributes. A nil tuple has length zero.
func (t *Tuple) Len() int {
	if t == nil {
		return 0
	}
	return len(t.attrs)
}

// At returns the i-th attribute in declaration order.
func (t *Tuple) At(i int) Attr { return t.attrs[i] }

// Set stores an attribute, replacing any existing attribute of the same name
// while keeping its position.
func (t *Tuple) Set(name string, v Value) {
	if t.index == nil {
		t.index = make(map[string]int, 4)
	}
	if i, ok := t.index[name]; ok {
		t.attrs[i].Val = v
		return
	}
	t.index[name] = len(t.attrs)
	t.attrs = append(t.attrs, Attr{Name: name, Val: v})
}

// Get returns the value of the named attribute and whether it is present.
// A nil tuple has no attributes.
func (t *Tuple) Get(name string) (Value, bool) {
	if t == nil || t.index == nil {
		return Null, false
	}
	i, ok := t.index[name]
	if !ok {
		return Null, false
	}
	return t.attrs[i].Val, true
}

// GetOr returns the named attribute or Null when absent.
func (t *Tuple) GetOr(name string) Value {
	v, _ := t.Get(name)
	return v
}

// Clone returns a deep copy. Cloning nil yields nil.
func (t *Tuple) Clone() *Tuple {
	if t == nil {
		return nil
	}
	c := &Tuple{Tag: t.Tag, attrs: append([]Attr(nil), t.attrs...), err: t.err}
	if t.index != nil {
		c.index = make(map[string]int, len(t.index))
		for k, v := range t.index {
			c.index[k] = v
		}
	}
	return c
}

// Equal reports whether two tuples have the same tag and the same attribute
// set (order-insensitive). Nil and empty tuples are equal.
func (t *Tuple) Equal(u *Tuple) bool {
	if t.Len() != u.Len() {
		return false
	}
	tag1, tag2 := "", ""
	if t != nil {
		tag1 = t.Tag
	}
	if u != nil {
		tag2 = u.Tag
	}
	if tag1 != tag2 {
		return false
	}
	for i := 0; i < t.Len(); i++ {
		a := t.At(i)
		v, ok := u.Get(a.Name)
		if !ok || !v.Equal(a.Val) {
			return false
		}
	}
	return true
}

// String renders the tuple in the language's angle-bracket syntax, e.g.
// <author name="A", year=2006>. An empty untagged tuple renders as "".
func (t *Tuple) String() string {
	if t.Len() == 0 && (t == nil || t.Tag == "") {
		return ""
	}
	var b strings.Builder
	b.WriteByte('<')
	if t.Tag != "" {
		b.WriteString(t.Tag)
		if len(t.attrs) > 0 {
			b.WriteByte(' ')
		}
	}
	for i, a := range t.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte('=')
		b.WriteString(a.Val.String())
	}
	b.WriteByte('>')
	return b.String()
}

// Names returns the attribute names in sorted order; used by the RA bridge
// to derive a schema from single-node graphs.
func (t *Tuple) Names() []string {
	if t.Len() == 0 {
		return nil
	}
	names := make([]string, 0, t.Len())
	for _, a := range t.attrs {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}
