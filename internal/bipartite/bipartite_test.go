package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func g(nRight int, adj ...[]int32) Graph { return Graph{Adj: adj, NRight: nRight} }

func TestMaxMatchingSmall(t *testing.T) {
	cases := []struct {
		g    Graph
		want int
	}{
		{g(0), 0},                         // empty
		{g(1, []int32{0}), 1},             // single edge
		{g(1, []int32{0}, []int32{0}), 1}, // two lefts share one right
		{g(2, []int32{0, 1}, []int32{0}), 2},
		{g(2, []int32{0}, []int32{0, 1}), 2},
		{g(3, []int32{0, 1}, []int32{0, 2}, []int32{1, 2}), 3}, // perfect on K3,3 minus
		{g(2, []int32{}, []int32{0, 1}), 1},                    // isolated left vertex
		// Classic augmenting-path case: greedy picks (0,0),(1,1); vertex 2
		// needs augmentation through both.
		{g(3, []int32{0}, []int32{0, 1}, []int32{1, 2}), 3},
	}
	for i, c := range cases {
		if got := MaxMatching(c.g); got != c.want {
			t.Errorf("case %d: MaxMatching = %d, want %d", i, got, c.want)
		}
	}
}

func TestSemiPerfect(t *testing.T) {
	if !HasSemiPerfect(g(2, []int32{0, 1}, []int32{0})) {
		t.Error("expected semi-perfect matching")
	}
	if HasSemiPerfect(g(1, []int32{0}, []int32{0})) {
		t.Error("pigeonhole: 2 lefts cannot saturate into 1 right")
	}
	if HasSemiPerfect(g(5, []int32{}, []int32{1})) {
		t.Error("isolated left vertex cannot be saturated")
	}
	if !HasSemiPerfect(g(3)) {
		t.Error("empty left side is trivially saturated")
	}
}

func TestMatchingIsValid(t *testing.T) {
	gr := g(4, []int32{0, 1}, []int32{1, 2}, []int32{2, 3}, []int32{3, 0})
	var m Matcher
	size, matchL, matchR := m.Max(gr)
	if size != 4 {
		t.Fatalf("size = %d, want 4", size)
	}
	for u, v := range matchL {
		if v == Unmatched {
			continue
		}
		if matchR[v] != int32(u) {
			t.Errorf("inconsistent matching: L[%d]=%d but R[%d]=%d", u, v, v, matchR[v])
		}
		ok := false
		for _, w := range gr.Adj[u] {
			if w == v {
				ok = true
			}
		}
		if !ok {
			t.Errorf("matched pair (%d,%d) is not an edge", u, v)
		}
	}
}

// reference is an exhaustive O(2^edges) maximum matching for validation.
func reference(gr Graph) int {
	usedR := make([]bool, gr.NRight)
	var rec func(u int) int
	rec = func(u int) int {
		if u == len(gr.Adj) {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for _, v := range gr.Adj[u] {
			if !usedR[v] {
				usedR[v] = true
				if r := 1 + rec(u+1); r > best {
					best = r
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

// Property: Hopcroft–Karp agrees with the exhaustive reference on random
// small bipartite graphs.
func TestMaxMatchingAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR := 1+rng.Intn(7), 1+rng.Intn(7)
		adj := make([][]int32, nL)
		for u := range adj {
			for v := 0; v < nR; v++ {
				if rng.Intn(3) == 0 {
					adj[u] = append(adj[u], int32(v))
				}
			}
		}
		gr := Graph{Adj: adj, NRight: nR}
		return MaxMatching(gr) == reference(gr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: matcher reuse across differently-sized graphs gives the same
// answers as fresh matchers.
func TestMatcherReuse(t *testing.T) {
	var m Matcher
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		nL, nR := 1+rng.Intn(10), 1+rng.Intn(10)
		adj := make([][]int32, nL)
		for u := range adj {
			for v := 0; v < nR; v++ {
				if rng.Intn(2) == 0 {
					adj[u] = append(adj[u], int32(v))
				}
			}
		}
		gr := Graph{Adj: adj, NRight: nR}
		size, _, _ := m.Max(gr)
		if size != MaxMatching(gr) {
			t.Fatalf("iteration %d: reused matcher disagrees", i)
		}
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const nL, nR, deg = 64, 64, 8
	adj := make([][]int32, nL)
	for u := range adj {
		for k := 0; k < deg; k++ {
			adj[u] = append(adj[u], int32(rng.Intn(nR)))
		}
	}
	gr := Graph{Adj: adj, NRight: nR}
	var m Matcher
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Max(gr)
	}
}
