// Package bipartite implements maximum bipartite matching with the
// Hopcroft–Karp algorithm (O(E·sqrt(V))), as used by the pseudo subgraph
// isomorphism refinement (He & Singh §4.3): a pattern node u stays a feasible
// mate of a data node v only while the bipartite graph between u's neighbors
// and v's neighbors admits a semi-perfect matching (all of u's neighbors
// matched).
package bipartite

// Unmatched marks a vertex with no partner in a matching.
const Unmatched = -1

// Graph is a bipartite graph given as adjacency lists of the left side;
// Adj[u] lists the right-side vertices adjacent to left vertex u.
type Graph struct {
	Adj    [][]int32
	NRight int
}

// Matcher runs Hopcroft–Karp. It keeps its scratch buffers so repeated calls
// on same-sized graphs (the inner loop of refinement) do not allocate.
type Matcher struct {
	matchL, matchR []int32
	dist           []int32
	queue          []int32
}

// inf is the BFS "unreached" distance.
const inf int32 = 1<<31 - 1

// resize readies the scratch buffers for nLeft/nRight vertices.
func (m *Matcher) resize(nLeft, nRight int) {
	if cap(m.matchL) < nLeft {
		m.matchL = make([]int32, nLeft)
		m.dist = make([]int32, nLeft)
		m.queue = make([]int32, nLeft)
	}
	m.matchL = m.matchL[:nLeft]
	m.dist = m.dist[:nLeft]
	m.queue = m.queue[:nLeft]
	if cap(m.matchR) < nRight {
		m.matchR = make([]int32, nRight)
	}
	m.matchR = m.matchR[:nRight]
	for i := range m.matchL {
		m.matchL[i] = Unmatched
	}
	for i := range m.matchR {
		m.matchR[i] = Unmatched
	}
}

// Max computes a maximum matching and returns its size. The returned slices
// (left match and right match, Unmatched where none) alias the Matcher's
// internal state and are valid until the next call.
func (m *Matcher) Max(g Graph) (int, []int32, []int32) {
	nLeft := len(g.Adj)
	m.resize(nLeft, g.NRight)
	size := 0
	// Greedy initialization speeds up typical instances.
	for u := 0; u < nLeft; u++ {
		for _, v := range g.Adj[u] {
			if m.matchR[v] == Unmatched {
				m.matchR[v] = int32(u)
				m.matchL[u] = v
				size++
				break
			}
		}
	}
	for m.bfs(g) {
		for u := 0; u < nLeft; u++ {
			if m.matchL[u] == Unmatched && m.dfs(g, int32(u)) {
				size++
			}
		}
	}
	return size, m.matchL, m.matchR
}

// bfs layers the free left vertices; returns whether an augmenting path exists.
func (m *Matcher) bfs(g Graph) bool {
	q := m.queue[:0]
	for u := range m.dist {
		if m.matchL[u] == Unmatched {
			m.dist[u] = 0
			q = append(q, int32(u))
		} else {
			m.dist[u] = inf
		}
	}
	found := false
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, v := range g.Adj[u] {
			w := m.matchR[v]
			if w == Unmatched {
				found = true
			} else if m.dist[w] == inf {
				m.dist[w] = m.dist[u] + 1
				q = append(q, w)
			}
		}
	}
	return found
}

// dfs searches for an augmenting path from free left vertex u along the BFS
// layering and flips it if found.
func (m *Matcher) dfs(g Graph, u int32) bool {
	for _, v := range g.Adj[u] {
		w := m.matchR[v]
		if w == Unmatched || (m.dist[w] == m.dist[u]+1 && m.dfs(g, w)) {
			m.matchL[u] = v
			m.matchR[v] = u
			return true
		}
	}
	m.dist[u] = inf
	return false
}

// SemiPerfect reports whether a matching exists that saturates every left
// vertex — the §4.3 feasibility test. It short-circuits on the pigeonhole
// bound and on any isolated left vertex.
func (m *Matcher) SemiPerfect(g Graph) bool {
	nLeft := len(g.Adj)
	if nLeft > g.NRight {
		return false
	}
	for _, a := range g.Adj {
		if len(a) == 0 {
			return false
		}
	}
	size, _, _ := m.Max(g)
	return size == nLeft
}

// MaxMatching is a convenience wrapper allocating a fresh Matcher.
func MaxMatching(g Graph) int {
	var m Matcher
	size, _, _ := m.Max(g)
	return size
}

// HasSemiPerfect is a convenience wrapper allocating a fresh Matcher.
func HasSemiPerfect(g Graph) bool {
	var m Matcher
	return m.SemiPerfect(g)
}
