package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	var tr Tree[int, string]
	if _, ok := tr.Get(1); ok {
		t.Error("empty tree should have no keys")
	}
	tr.Set(1, "a")
	tr.Set(2, "b")
	tr.Set(1, "a2") // replace
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if v, ok := tr.Get(1); !ok || v != "a2" {
		t.Errorf("Get(1) = %q,%v", v, ok)
	}
	if v, ok := tr.Get(2); !ok || v != "b" {
		t.Errorf("Get(2) = %q,%v", v, ok)
	}
}

func TestManyInsertsOrdered(t *testing.T) {
	var tr Tree[int, int]
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Set(i, i*i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		if v, ok := tr.Get(i); !ok || v != i*i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	// Balance: height should be logarithmic (log_16 10000 ≈ 3.3).
	if h := tr.Height(); h > 6 {
		t.Errorf("height = %d, too tall for %d keys", h, n)
	}
	// Ascend yields sorted keys.
	prev := -1
	count := 0
	tr.Ascend(func(k, v int) bool {
		if k <= prev {
			t.Fatalf("Ascend out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Errorf("Ascend visited %d, want %d", count, n)
	}
}

func TestAscendRange(t *testing.T) {
	var tr Tree[int, int]
	for i := 0; i < 100; i++ {
		tr.Set(i*2, i) // even keys 0..198
	}
	var got []int
	tr.AscendRange(10, 21, func(k, v int) bool {
		got = append(got, k)
		return true
	})
	want := []int{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.Ascend(func(k, v int) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d, want 5", n)
	}
}

func TestDelete(t *testing.T) {
	var tr Tree[int, int]
	const n = 2000
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(n)
	for _, k := range perm {
		tr.Set(k, k)
	}
	if tr.Delete(n + 5) {
		t.Error("deleting absent key should return false")
	}
	// Delete every third key in random order.
	deleted := map[int]bool{}
	for _, k := range perm {
		if k%3 == 0 {
			if !tr.Delete(k) {
				t.Fatalf("Delete(%d) = false", k)
			}
			deleted[k] = true
		}
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(i)
		if deleted[i] && ok {
			t.Fatalf("key %d should be deleted", i)
		}
		if !deleted[i] && (!ok || v != i) {
			t.Fatalf("key %d lost: %d,%v", i, v, ok)
		}
	}
	if tr.Len() != n-len(deleted) {
		t.Errorf("Len = %d, want %d", tr.Len(), n-len(deleted))
	}
}

func TestDeleteAll(t *testing.T) {
	var tr Tree[int, int]
	for i := 0; i < 500; i++ {
		tr.Set(i, i)
	}
	for i := 499; i >= 0; i-- {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("tree not empty after deleting all: len=%d height=%d", tr.Len(), tr.Height())
	}
	tr.Set(7, 7) // still usable
	if v, ok := tr.Get(7); !ok || v != 7 {
		t.Error("tree unusable after emptying")
	}
}

func TestUpdatePostingList(t *testing.T) {
	var tr Tree[string, []int32]
	add := func(label string, id int32) {
		tr.Update(label, func(old []int32, _ bool) []int32 { return append(old, id) })
	}
	add("A", 1)
	add("B", 2)
	add("A", 3)
	if v, _ := tr.Get("A"); len(v) != 2 || v[0] != 1 || v[1] != 3 {
		t.Errorf("posting list A = %v", v)
	}
}

// Property: the tree agrees with a map reference under random interleaved
// Set/Delete/Get operations.
func TestAgainstMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree[int, int]
		ref := map[int]int{}
		for op := 0; op < 400; op++ {
			k := rng.Intn(60)
			switch rng.Intn(3) {
			case 0:
				v := rng.Int()
				tr.Set(k, v)
				ref[k] = v
			case 1:
				delTr := tr.Delete(k)
				_, inRef := ref[k]
				delete(ref, k)
				if delTr != inRef {
					return false
				}
			default:
				v, ok := tr.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		// Final: full scan matches sorted reference.
		keys := make([]int, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		i := 0
		okScan := true
		tr.Ascend(func(k, v int) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				okScan = false
				return false
			}
			i++
			return true
		})
		return okScan && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStringKeys(t *testing.T) {
	var tr Tree[string, int]
	words := []string{"gamma", "alpha", "beta", "delta", "epsilon"}
	for i, w := range words {
		tr.Set(w, i)
	}
	var got []string
	tr.Ascend(func(k string, _ int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) {
		t.Errorf("string keys out of order: %v", got)
	}
}

func BenchmarkSet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, b.N)
	for i := range keys {
		keys[i] = rng.Int()
	}
	var tr Tree[int, int]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(keys[i], i)
	}
}

func BenchmarkGet(b *testing.B) {
	var tr Tree[int, int]
	for i := 0; i < 100000; i++ {
		tr.Set(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i % 100000)
	}
}
