// Package btree provides an in-memory B-tree keyed by any ordered type.
// It backs the node-attribute indexes of §4.2 ("node attributes can be
// indexed directly using traditional index structures such as B-trees") and
// the per-column indexes of the SQL baseline engine, mirroring the B-tree
// indices built on MySQL's V and E tables in the paper's experiments.
package btree

import "cmp"

// degree is the minimum degree t: every node except the root holds between
// t-1 and 2t-1 keys. 16 keeps nodes within a couple of cache lines for
// typical key sizes.
const degree = 16

const (
	maxKeys = 2*degree - 1
	minKeys = degree - 1
)

// Tree is a B-tree map from K to V. The zero value is an empty tree.
type Tree[K cmp.Ordered, V any] struct {
	root *node[K, V]
	size int
}

type node[K cmp.Ordered, V any] struct {
	keys     []K
	vals     []V
	children []*node[K, V] // nil for leaves
}

func (n *node[K, V]) leaf() bool { return n.children == nil }

// find returns the index of the first key >= k and whether it equals k.
func (n *node[K, V]) find(k K) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp.Less(n.keys[mid], k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == k
}

// Len returns the number of keys stored.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under k.
func (t *Tree[K, V]) Get(k K) (V, bool) {
	var zero V
	n := t.root
	for n != nil {
		i, eq := n.find(k)
		if eq {
			return n.vals[i], true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	return zero, false
}

// Set inserts or replaces the value under k.
func (t *Tree[K, V]) Set(k K, v V) {
	if t.root == nil {
		t.root = &node[K, V]{keys: []K{k}, vals: []V{v}}
		t.size = 1
		return
	}
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &node[K, V]{children: []*node[K, V]{old}}
		t.root.splitChild(0)
	}
	if t.root.insert(k, v) {
		t.size++
	}
}

// Update applies fn to the value under k (zero V when absent) and stores the
// result; used to build posting lists without a double lookup.
func (t *Tree[K, V]) Update(k K, fn func(old V, present bool) V) {
	old, ok := t.Get(k)
	t.Set(k, fn(old, ok))
}

// splitChild splits the full i-th child of n, lifting its median into n.
func (n *node[K, V]) splitChild(i int) {
	child := n.children[i]
	right := &node[K, V]{
		keys: append([]K(nil), child.keys[degree:]...),
		vals: append([]V(nil), child.vals[degree:]...),
	}
	if !child.leaf() {
		right.children = append([]*node[K, V](nil), child.children[degree:]...)
		child.children = child.children[:degree]
	}
	medianK, medianV := child.keys[degree-1], child.vals[degree-1]
	child.keys = child.keys[:degree-1]
	child.vals = child.vals[:degree-1]

	n.keys = append(n.keys, medianK)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = medianK
	n.vals = append(n.vals, medianV)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = medianV
	n.children = append(n.children, right)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insert adds k below a non-full node; reports whether the tree grew.
func (n *node[K, V]) insert(k K, v V) bool {
	i, eq := n.find(k)
	if eq {
		n.vals[i] = v
		return false
	}
	if n.leaf() {
		var zk K
		var zv V
		n.keys = append(n.keys, zk)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, zv)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		return true
	}
	if len(n.children[i].keys) == maxKeys {
		n.splitChild(i)
		if cmp.Less(n.keys[i], k) {
			i++
		} else if n.keys[i] == k {
			n.vals[i] = v
			return false
		}
	}
	return n.children[i].insert(k, v)
}

// Delete removes k; reports whether it was present.
func (t *Tree[K, V]) Delete(k K) bool {
	if t.root == nil {
		return false
	}
	removed := t.root.delete(k)
	if len(t.root.keys) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	if removed {
		t.size--
	}
	return removed
}

func (n *node[K, V]) delete(k K) bool {
	i, eq := n.find(k)
	if n.leaf() {
		if !eq {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	if eq {
		// Replace with predecessor from the left subtree, then delete it there.
		child := n.children[i]
		if len(child.keys) > minKeys {
			pk, pv := child.max()
			n.keys[i], n.vals[i] = pk, pv
			return child.delete(pk)
		}
		right := n.children[i+1]
		if len(right.keys) > minKeys {
			sk, sv := right.min()
			n.keys[i], n.vals[i] = sk, sv
			return right.delete(sk)
		}
		n.merge(i)
		return n.children[i].delete(k)
	}
	child := n.children[i]
	if len(child.keys) == minKeys {
		n.fill(i)
		// fill may have merged child with a sibling; re-find.
		return n.delete(k)
	}
	return child.delete(k)
}

func (n *node[K, V]) max() (K, V) {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
}

func (n *node[K, V]) min() (K, V) {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

// fill ensures child i has more than minKeys keys by borrowing or merging.
func (n *node[K, V]) fill(i int) {
	switch {
	case i > 0 && len(n.children[i-1].keys) > minKeys:
		n.borrowLeft(i)
	case i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys:
		n.borrowRight(i)
	case i < len(n.children)-1:
		n.merge(i)
	default:
		n.merge(i - 1)
	}
}

func (n *node[K, V]) borrowLeft(i int) {
	child, left := n.children[i], n.children[i-1]
	child.keys = append([]K{n.keys[i-1]}, child.keys...)
	child.vals = append([]V{n.vals[i-1]}, child.vals...)
	n.keys[i-1] = left.keys[len(left.keys)-1]
	n.vals[i-1] = left.vals[len(left.vals)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.vals = left.vals[:len(left.vals)-1]
	if !child.leaf() {
		child.children = append([]*node[K, V]{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
}

func (n *node[K, V]) borrowRight(i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.vals = append(child.vals, n.vals[i])
	n.keys[i] = right.keys[0]
	n.vals[i] = right.vals[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	right.vals = append(right.vals[:0], right.vals[1:]...)
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// merge folds child i+1 and the separator key into child i.
func (n *node[K, V]) merge(i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.vals = append(child.vals, n.vals[i])
	child.keys = append(child.keys, right.keys...)
	child.vals = append(child.vals, right.vals...)
	child.children = append(child.children, right.children...)
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend visits all pairs in key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(K, V) bool) {
	t.root.ascend(fn)
}

func (n *node[K, V]) ascend(fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i, k := range n.keys {
		if !n.leaf() && !n.children[i].ascend(fn) {
			return false
		}
		if !fn(k, n.vals[i]) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(fn)
	}
	return true
}

// AscendRange visits pairs with lo <= key < hi in order until fn returns
// false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(K, V) bool) {
	t.root.ascendRange(lo, hi, fn)
}

func (n *node[K, V]) ascendRange(lo, hi K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	i, _ := n.find(lo)
	for ; i < len(n.keys); i++ {
		if !n.leaf() && !n.children[i].ascendRange(lo, hi, fn) {
			return false
		}
		if !cmp.Less(n.keys[i], hi) {
			return false
		}
		if !fn(n.keys[i], n.vals[i]) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascendRange(lo, hi, fn)
	}
	return true
}

// Height returns the tree height (0 for empty); exercised by tests to check
// balance.
func (t *Tree[K, V]) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return h
}
