// Package ra implements a small set-semantics relational algebra — the five
// primitive operators (selection, projection, Cartesian product, union,
// difference) plus renaming — and the Theorem 4.5 bridge that embeds RA in
// GraphQL: a relation is a collection of single-node graphs whose node
// tuple is the relational tuple.
package ra

import (
	"fmt"
	"sort"
	"strings"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
)

// Relation is a named set of tuples over a schema (attribute name list).
type Relation struct {
	Name   string
	Schema []string
	tuples [][]graph.Value
	seen   map[string]bool
}

// NewRelation returns an empty relation.
func NewRelation(name string, schema ...string) *Relation {
	return &Relation{Name: name, Schema: schema, seen: map[string]bool{}}
}

func key(vals []graph.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// Insert adds a tuple (set semantics); it reports whether the tuple was
// new. Inserting a tuple of the wrong arity for the schema is an error (it
// used to panic, which took down whole query evaluations).
func (r *Relation) Insert(vals ...graph.Value) (bool, error) {
	if len(vals) != len(r.Schema) {
		return false, fmt.Errorf("ra: arity mismatch inserting into %s: %d values for %d attributes", r.Name, len(vals), len(r.Schema))
	}
	k := key(vals)
	if r.seen[k] {
		return false, nil
	}
	if r.seen == nil {
		r.seen = map[string]bool{}
	}
	r.seen[k] = true
	r.tuples = append(r.tuples, vals)
	return true, nil
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples for read-only iteration.
func (r *Relation) Tuples() [][]graph.Value { return r.tuples }

// col returns the index of an attribute in the schema.
func (r *Relation) col(name string) (int, error) {
	for i, s := range r.Schema {
		if s == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ra: relation %s has no attribute %q", r.Name, name)
}

// tupleEnv resolves bare attribute names against one tuple.
type tupleEnv struct {
	schema []string
	vals   []graph.Value
}

// Resolve implements expr.Env.
func (e tupleEnv) Resolve(parts []string) (graph.Value, error) {
	name := parts[len(parts)-1]
	for i, s := range e.schema {
		if s == name {
			return e.vals[i], nil
		}
	}
	return graph.Null, nil
}

// Select returns the tuples satisfying the predicate (bare attribute
// names).
func Select(r *Relation, pred expr.Expr) (*Relation, error) {
	out := NewRelation("σ("+r.Name+")", r.Schema...)
	for _, t := range r.tuples {
		ok, err := expr.Holds(pred, tupleEnv{r.Schema, t})
		if err != nil {
			return nil, err
		}
		if ok {
			if _, err := out.Insert(t...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Project keeps only the named attributes (with set-semantics dedup).
func Project(r *Relation, attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		c, err := r.col(a)
		if err != nil {
			return nil, err
		}
		idx[i] = c
	}
	out := NewRelation("π("+r.Name+")", attrs...)
	for _, t := range r.tuples {
		row := make([]graph.Value, len(idx))
		for i, c := range idx {
			row[i] = t[c]
		}
		if _, err := out.Insert(row...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Product concatenates every pair of tuples; schemas must be disjoint.
func Product(a, b *Relation) (*Relation, error) {
	for _, s := range b.Schema {
		for _, t := range a.Schema {
			if s == t {
				return nil, fmt.Errorf("ra: product schemas share attribute %q; rename first", s)
			}
		}
	}
	out := NewRelation(a.Name+"×"+b.Name, append(append([]string{}, a.Schema...), b.Schema...)...)
	for _, ta := range a.tuples {
		for _, tb := range b.tuples {
			if _, err := out.Insert(append(append([]graph.Value{}, ta...), tb...)...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// sameSchema checks union-compatibility.
func sameSchema(a, b *Relation) error {
	if len(a.Schema) != len(b.Schema) {
		return fmt.Errorf("ra: schemas %v and %v are not union-compatible", a.Schema, b.Schema)
	}
	for i := range a.Schema {
		if a.Schema[i] != b.Schema[i] {
			return fmt.Errorf("ra: schemas %v and %v are not union-compatible", a.Schema, b.Schema)
		}
	}
	return nil
}

// Union returns a ∪ b.
func Union(a, b *Relation) (*Relation, error) {
	if err := sameSchema(a, b); err != nil {
		return nil, err
	}
	out := NewRelation(a.Name+"∪"+b.Name, a.Schema...)
	for _, t := range a.tuples {
		if _, err := out.Insert(t...); err != nil {
			return nil, err
		}
	}
	for _, t := range b.tuples {
		if _, err := out.Insert(t...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Difference returns a − b.
func Difference(a, b *Relation) (*Relation, error) {
	if err := sameSchema(a, b); err != nil {
		return nil, err
	}
	out := NewRelation(a.Name+"−"+b.Name, a.Schema...)
	for _, t := range a.tuples {
		if !b.seen[key(t)] {
			if _, err := out.Insert(t...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Rename returns a copy with attribute old renamed to new.
func Rename(r *Relation, oldName, newName string) (*Relation, error) {
	if _, err := r.col(oldName); err != nil {
		return nil, err
	}
	schema := append([]string{}, r.Schema...)
	for i, s := range schema {
		if s == oldName {
			schema[i] = newName
		}
	}
	out := NewRelation("ρ("+r.Name+")", schema...)
	for _, t := range r.tuples {
		if _, err := out.Insert(t...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Join is the derived natural-join on one shared attribute (after
// renaming): σ_{a.x=b.y}(a × b) with y projected away.
func Join(a, b *Relation, ax, bx string) (*Relation, error) {
	ca, err := a.col(ax)
	if err != nil {
		return nil, err
	}
	cb, err := b.col(bx)
	if err != nil {
		return nil, err
	}
	schema := append([]string{}, a.Schema...)
	for i, s := range b.Schema {
		if i == cb {
			continue
		}
		schema = append(schema, s)
	}
	out := NewRelation(a.Name+"⋈"+b.Name, schema...)
	for _, ta := range a.tuples {
		for _, tb := range b.tuples {
			if !ta[ca].Equal(tb[cb]) {
				continue
			}
			row := append([]graph.Value{}, ta...)
			for i, v := range tb {
				if i != cb {
					row = append(row, v)
				}
			}
			if _, err := out.Insert(row...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Equal reports whether two relations hold the same tuple set over the same
// schema (order-insensitive).
func Equal(a, b *Relation) bool {
	if sameSchema(a, b) != nil || a.Len() != b.Len() {
		return false
	}
	for _, t := range a.tuples {
		if !b.seen[key(t)] {
			return false
		}
	}
	return true
}

// Sorted returns the tuples in a deterministic order, for printing.
func (r *Relation) Sorted() [][]graph.Value {
	out := append([][]graph.Value{}, r.tuples...)
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

// ---- Theorem 4.5 bridge: RA ⊆ GraphQL ----

// ToCollection embeds a relation as a collection of single-node graphs: the
// node's tuple is the relational tuple (the Theorem 4.5 construction).
func ToCollection(r *Relation) graph.Collection {
	out := make(graph.Collection, 0, len(r.tuples))
	for i, t := range r.tuples {
		g := graph.New(fmt.Sprintf("%s_%d", r.Name, i))
		attrs := graph.NewTuple("")
		for c, name := range r.Schema {
			attrs.Set(name, t[c])
		}
		g.AddNode("t", attrs)
		out = append(out, g)
	}
	return out
}

// FromCollection recovers a relation from a collection of single-node
// graphs over the given schema. Node attribute sets must cover the schema.
func FromCollection(c graph.Collection, name string, schema []string) (*Relation, error) {
	out := NewRelation(name, schema...)
	for _, g := range c {
		if g.NumNodes() != 1 {
			return nil, fmt.Errorf("ra: graph %s is not single-node", g.Name)
		}
		attrs := g.Node(0).Attrs
		row := make([]graph.Value, len(schema))
		for i, s := range schema {
			row[i] = attrs.GetOr(s)
		}
		if _, err := out.Insert(row...); err != nil {
			return nil, err
		}
	}
	return out, nil
}
