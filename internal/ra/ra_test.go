package ra

import (
	"math/rand"
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

func eq(l, r expr.Expr) expr.Expr  { return expr.Binary{Op: expr.OpEq, L: l, R: r} }
func gt(l, r expr.Expr) expr.Expr  { return expr.Binary{Op: expr.OpGt, L: l, R: r} }
func nm(parts ...string) expr.Expr { return expr.Name{Parts: parts} }

func sampleEmp() *Relation {
	r := NewRelation("emp", "name", "dept", "salary")
	r.Insert(graph.String("ann"), graph.String("eng"), graph.Int(90))
	r.Insert(graph.String("bob"), graph.String("eng"), graph.Int(80))
	r.Insert(graph.String("cat"), graph.String("ops"), graph.Int(70))
	return r
}

func TestInsertSetSemantics(t *testing.T) {
	r := NewRelation("r", "x")
	first, err := r.Insert(graph.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Insert(graph.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if !first || second {
		t.Error("set semantics violated")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestInsertArityMismatch(t *testing.T) {
	r := NewRelation("r", "x", "y")
	if _, err := r.Insert(graph.Int(1)); err == nil {
		t.Error("arity mismatch should error, not panic")
	}
	if r.Len() != 0 {
		t.Errorf("failed insert must not add tuples; Len = %d", r.Len())
	}
}

func TestSelectProject(t *testing.T) {
	emp := sampleEmp()
	sel, err := Select(emp, eq(nm("dept"), expr.Lit{Val: graph.String("eng")}))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 2 {
		t.Errorf("select = %d, want 2", sel.Len())
	}
	proj, err := Project(emp, "dept")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 2 { // eng, ops — dedup
		t.Errorf("project = %d, want 2", proj.Len())
	}
	if _, err := Project(emp, "nope"); err == nil {
		t.Error("projecting unknown attribute should error")
	}
}

func TestProductRequiresDisjointSchemas(t *testing.T) {
	emp := sampleEmp()
	if _, err := Product(emp, emp); err == nil {
		t.Error("product of identical schemas should error")
	}
	ren, err := Rename(emp, "name", "name2")
	if err != nil {
		t.Fatal(err)
	}
	ren, _ = Rename(ren, "dept", "dept2")
	ren, _ = Rename(ren, "salary", "salary2")
	prod, err := Product(emp, ren)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Len() != 9 {
		t.Errorf("product = %d, want 9", prod.Len())
	}
}

func TestUnionDifference(t *testing.T) {
	a := NewRelation("a", "x")
	b := NewRelation("b", "x")
	a.Insert(graph.Int(1))
	a.Insert(graph.Int(2))
	b.Insert(graph.Int(2))
	b.Insert(graph.Int(3))
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 {
		t.Errorf("union = %d", u.Len())
	}
	d, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || !d.Tuples()[0][0].Equal(graph.Int(1)) {
		t.Errorf("difference wrong")
	}
	bad := NewRelation("bad", "y")
	if _, err := Union(a, bad); err == nil {
		t.Error("union of incompatible schemas should error")
	}
}

func TestJoin(t *testing.T) {
	emp := sampleEmp()
	dept := NewRelation("dept", "dname", "floor")
	dept.Insert(graph.String("eng"), graph.Int(3))
	dept.Insert(graph.String("ops"), graph.Int(1))
	j, err := Join(emp, dept, "dept", "dname")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Errorf("join = %d, want 3", j.Len())
	}
	if len(j.Schema) != 4 {
		t.Errorf("join schema = %v", j.Schema)
	}
}

func TestCollectionRoundtrip(t *testing.T) {
	emp := sampleEmp()
	coll := ToCollection(emp)
	if len(coll) != 3 {
		t.Fatalf("collection = %d graphs", len(coll))
	}
	back, err := FromCollection(coll, "emp", emp.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(emp, back) {
		t.Error("roundtrip lost tuples")
	}
}

// TestTheorem45Selection: RA selection equals GraphQL selection on the
// embedded collection (single-node pattern with the same predicate).
func TestTheorem45Selection(t *testing.T) {
	emp := sampleEmp()
	pred := gt(nm("salary"), expr.Lit{Val: graph.Int(75)})
	want, err := Select(emp, pred)
	if err != nil {
		t.Fatal(err)
	}

	p := pattern.New("P")
	p.AddNode("t", nil, pred)
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	var kept graph.Collection
	for _, g := range ToCollection(emp) {
		ok, err := match.Exists(p, g, nil, match.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			kept = append(kept, g)
		}
	}
	got, err := FromCollection(kept, "got", emp.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(want, got) {
		t.Errorf("RA select %d tuples, GraphQL select %d", want.Len(), got.Len())
	}
}

// TestTheorem45SelectionRandom: the same equivalence on random relations
// and random comparison predicates.
func TestTheorem45SelectionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		r := NewRelation("r", "a", "b")
		for i := 0; i < 20; i++ {
			r.Insert(graph.Int(int64(rng.Intn(5))), graph.Int(int64(rng.Intn(5))))
		}
		ops := []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpGe}
		pred := expr.Binary{
			Op: ops[rng.Intn(len(ops))],
			L:  expr.Name{Parts: []string{"a"}},
			R:  expr.Lit{Val: graph.Int(int64(rng.Intn(5)))},
		}
		want, err := Select(r, pred)
		if err != nil {
			t.Fatal(err)
		}
		p := pattern.New("P")
		p.AddNode("t", nil, pred)
		var kept graph.Collection
		for _, g := range ToCollection(r) {
			ok, err := match.Exists(p, g, nil, match.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				kept = append(kept, g)
			}
		}
		got, err := FromCollection(kept, "got", r.Schema)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(want, got) {
			t.Fatalf("trial %d: selection mismatch: RA %d vs GraphQL %d", trial, want.Len(), got.Len())
		}
	}
}

func TestEqual(t *testing.T) {
	a := sampleEmp()
	b := sampleEmp()
	if !Equal(a, b) {
		t.Error("identical relations should be equal")
	}
	b.Insert(graph.String("dan"), graph.String("ops"), graph.Int(60))
	if Equal(a, b) {
		t.Error("different sizes should differ")
	}
}

func TestSortedDeterministic(t *testing.T) {
	r := NewRelation("r", "x")
	r.Insert(graph.Int(3))
	r.Insert(graph.Int(1))
	r.Insert(graph.Int(2))
	s := r.Sorted()
	if !(s[0][0].AsInt() == 1 && s[1][0].AsInt() == 2 && s[2][0].AsInt() == 3) {
		t.Errorf("Sorted = %v", s)
	}
}
