package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mergePkgs are the coordinator/merge/serialization layers where iteration
// order becomes output order: a range over a map there injects Go's
// randomized map order straight into results the determinism contract
// (coordinator slot merge, canonical collection order, wire encoding)
// promises to be stable.
var mergePkgs = []string{
	"internal/store",
	"internal/exec",
	"internal/server",
	"internal/algebra",
	"internal/graph",
	"internal/sqlbase",
}

// timingExemptPkgs may read the clock and global randomness freely:
// observability and figure/report generation exist to measure wall time,
// the server owes HTTP deadlines, and this package times its own runs.
var timingExemptPkgs = []string{
	"internal/obs",
	"internal/stats",
	"internal/figures",
	"internal/gen",
	"internal/server",
	"internal/analysis",
}

// timingSinkMethods are repo methods that exist to swallow wall-clock
// values (they feed observability, never results).
var timingSinkMethods = map[string]bool{
	"internal/match.Stats.RecordOp": true,
}

// timingSinkTypes are types whose fields may be assigned clock-derived
// values: they are observability carriers, not result data.
var timingSinkTypes = map[string]bool{
	"internal/match.Stats": true,
	// The streaming return clause carries its operator start time across
	// chunk flushes; the value only ever feeds RecordOp and the span.
	"internal/exec.rowEmitter": true,
	// RemoteInfo carries per-RPC wall time and attempt counts for the
	// EXPLAIN shard table and the coordinator's shard-rpc spans; result
	// groups never read it.
	"internal/store.RemoteInfo": true,
	// ShardHealth timestamps each probe for /healthz; never result data.
	"internal/store.ShardHealth": true,
}

// randConstructors are the math/rand functions that build a seeded,
// deterministic generator — the sanctioned form (reach's sampling
// estimator depends on rand.New(rand.NewSource(seed))). Everything else at
// package level draws from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// DetMerge enforces the two determinism invariants the runtime's tests can
// only sample:
//
//  1. In merge/serialization packages, a `range` over a map must not
//     produce ordered output — appending to a slice (unless the slice is
//     sorted afterwards, the FromMap idiom), accumulating a string, or
//     sending on a channel inside the loop body all inherit the randomized
//     map order. Writing into another map or into index-addressed slots is
//     fine (order-insensitive).
//
//  2. In result-producing packages, wall-clock values (time.Now/Since/
//     Until and anything dataflow-derived from them) may only flow into
//     observability — internal/obs, internal/stats, registered sink
//     methods/types, and conditions — never into returns, appends, sends
//     or non-obs composites. Global math/rand draws are banned outright;
//     seeded generators (rand.New(rand.NewSource(n))) stay legal.
//
// _test.go files are exempt (tests time out and seed freely).
var DetMerge = &Analyzer{
	Name: "detmerge",
	Doc:  "no map-order or wall-clock/global-rand nondeterminism in merge and result paths",
	Run:  runDetMerge,
}

func runDetMerge(pass *Pass) {
	inMerge := pathHasAnySuffix(pass.Path, mergePkgs)
	inTiming := strings.Contains(pass.Path, "internal/") && !pathHasAnySuffix(pass.Path, timingExemptPkgs)
	if !inMerge && !inTiming {
		return
	}
	for _, file := range pass.Files {
		for _, u := range funcUnits(file) {
			if isTestFile(pass, u.Body) {
				continue
			}
			if inMerge {
				checkMapOrder(pass, u)
			}
			if inTiming {
				checkTiming(pass, u)
				checkGlobalRand(pass, u)
			}
		}
	}
}

// ---- rule 1: map iteration order must not become output order ----

func checkMapOrder(pass *Pass, u funcUnit) {
	walkUnit(u, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, u, rs)
		return true
	})
}

func checkMapRangeBody(pass *Pass, u funcUnit, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "send inside range over map in %s leaks randomized map order into channel order; collect and sort first", u.Name)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				target, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.Info.Uses[target].(*types.Var)
				if !ok {
					if v, ok = pass.Info.Defs[target].(*types.Var); !ok {
						continue
					}
				}
				if !sortedAfter(pass, u, rs, v) {
					pass.Reportf(n.Pos(), "append inside range over map in %s inherits randomized map order; sort %s after the loop or iterate sorted keys", u.Name, target.Name)
				}
			}
			if n.Tok == token.ADD_ASSIGN {
				if tv, ok := pass.Info.Types[n.Lhs[0]]; ok && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string accumulation inside range over map in %s inherits randomized map order; sort keys first", u.Name)
					}
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether the unit sorts v (sort.* or slices.Sort*
// call mentioning v) anywhere after the range loop — the canonical
// collect-then-sort idiom of store.FromMap and Snapshot.Docs.
func sortedAfter(pass *Pass, u funcUnit, rs *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(u.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeOf(pass, call)
		path := pkgLevelFuncOf(fn)
		if path != "sort" && path != "slices" {
			return true
		}
		if path == "slices" && !strings.HasPrefix(fn.Name(), "Sort") {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if uv, ok := pass.Info.Uses[id].(*types.Var); ok && uv == v {
						mentions = true
					}
				}
				return !mentions
			})
			if mentions {
				sorted = true
				break
			}
		}
		return true
	})
	return sorted
}

// ---- rule 2: wall-clock values stay inside observability ----

func checkTiming(pass *Pass, u funcUnit) {
	isClockCall := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeOf(pass, call)
		return isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Since") || isPkgFunc(fn, "time", "Until")
	}
	tainted := taintedVars(pass, u, taintSpec{
		seed: isClockCall,
		// Method calls on clock-derived values (d.Seconds(), t.Unix())
		// stay clock-derived.
		carrier: func(e ast.Expr, carries func(ast.Expr) bool) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			return ok && carries(sel.X)
		},
	})
	carries := func(e ast.Expr) bool {
		return exprCarriesClock(pass, e, tainted, isClockCall)
	}
	report := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(), "wall-clock-derived value %s in %s; clock values may only feed internal/obs, stats sinks and conditions — results must be deterministic", what, u.Name)
	}
	walkUnit(u, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if carries(res) {
					report(res, "escapes via return")
				}
			}
		case *ast.SendStmt:
			if carries(n.Value) {
				report(n, "escapes via channel send")
			}
		case *ast.CompositeLit:
			if timingSinkComposite(pass, n) {
				return true
			}
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if carries(e) {
					report(e, "stored in a non-observability composite")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				switch target := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					// Local propagation, handled by the taint closure.
				case *ast.SelectorExpr, *ast.IndexExpr:
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs == nil || !carries(rhs) {
						continue
					}
					if sel, ok := target.(*ast.SelectorExpr); ok && timingSinkBase(pass, sel.X) {
						continue
					}
					report(n, "stored into a non-sink field or element")
				}
			}
		case *ast.CallExpr:
			fn := calleeOf(pass, n)
			if fn != nil {
				if isPkgFunc(fn, "time", "Since") || isPkgFunc(fn, "time", "Until") {
					return true // measuring against a start time is the idiom
				}
				if timingSinkCallee(fn) {
					return true
				}
			} else {
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
					for _, arg := range n.Args {
						if carries(arg) {
							report(arg, "appended to a result slice")
						}
					}
				}
				return true // conversions, builtins, indirect calls
			}
			for _, arg := range n.Args {
				if carries(arg) {
					report(arg, "passed to a non-observability callee")
				}
			}
		}
		return true
	})
}

// exprCarriesClock extends the variable taint set to expressions at the
// escape site (wall >= x is a condition, not an escape; but `return wall`
// and `return int64(wall)` both carry).
func exprCarriesClock(pass *Pass, e ast.Expr, tainted map[*types.Var]bool, isClockCall func(ast.Expr) bool) bool {
	carries := false
	ast.Inspect(e, func(n ast.Node) bool {
		if carries {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			// Composites are checked (and reported) by their own case —
			// returning one is not a second escape.
			return false
		}
		if ex, ok := n.(ast.Expr); ok && isClockCall(ex) {
			carries = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[id].(*types.Var); ok && tainted[v] {
				carries = true
				return false
			}
		}
		return true
	})
	return carries
}

// timingSinkCallee reports whether calling fn is a sanctioned destination
// for clock values: anything in internal/obs or internal/stats, or a
// registered sink method.
func timingSinkCallee(fn *types.Func) bool {
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		if pathHasSuffix(p, "internal/obs") || pathHasSuffix(p, "internal/stats") {
			return true
		}
	}
	key := methodKeyOf(fn)
	if timingSinkMethods[key] {
		return true
	}
	return strings.HasPrefix(key, "internal/obs.") || strings.HasPrefix(key, "internal/stats.")
}

// timingSinkComposite reports whether the composite literal builds an
// observability value (obs.SlowQueryRecord{Wall: wall} is the idiom).
func timingSinkComposite(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	key := namedTypeKey(tv.Type)
	if timingSinkTypes[key] {
		return true
	}
	return strings.HasPrefix(key, "internal/obs.") || strings.HasPrefix(key, "internal/stats.")
}

// timingSinkBase reports whether the assignment base is a registered sink
// type (s.stats.RetrieveTime = time.Since(start) writes into match.Stats).
func timingSinkBase(pass *Pass, base ast.Expr) bool {
	tv, ok := pass.Info.Types[base]
	if !ok || tv.Type == nil {
		return false
	}
	key := namedTypeKey(tv.Type)
	if timingSinkTypes[key] {
		return true
	}
	return strings.HasPrefix(key, "internal/obs.") || strings.HasPrefix(key, "internal/stats.")
}

// ---- rule 2b: no global math/rand draws ----

func checkGlobalRand(pass *Pass, u funcUnit) {
	walkUnit(u, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass, call)
		path := pkgLevelFuncOf(fn)
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		if randConstructors[fn.Name()] {
			return true
		}
		pass.Reportf(call.Pos(), "global %s.%s in %s draws from the process-wide source; results must be deterministic — use rand.New(rand.NewSource(seed))", path, fn.Name(), u.Name)
		return true
	})
}
