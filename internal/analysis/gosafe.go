package analysis

import (
	"go/ast"
	"go/types"
)

// unsafeInGoroutine lists methods that mutate receiver state without
// synchronization; calling them from a goroutine that shares the receiver
// is a data race. Keyed by "<internal path>.<type>".
var unsafeInGoroutine = map[string]map[string]bool{
	"internal/graph.Graph":    {"AddNode": true, "AddEdge": true, "RenameNode": true},
	"internal/graph.Builder":  {"AddNode": true, "AddEdge": true, "RenameNode": true, "SetTuple": true},
	"internal/index.Interner": {"Intern": true},
	// Stats.RecordOp appends to the Ops slice; the parallel operators call
	// it from the coordinating goroutine only, never from pool workers.
	"internal/match.Stats": {"RecordOp": true},
	// Span.End and SetAttr are coordinator-only by contract: End freezes
	// the wall clock once and SetAttr is last-write-wins, so calling either
	// from pool workers corrupts the trace even though Add/StartChild are
	// locked and worker-safe.
	"internal/obs.Span": {"End": true, "SetAttr": true},
	// DocBuilder batches registrations without synchronization; builds are
	// single-goroutine by contract, with DocStore.install publishing the
	// result under the store lock.
	"internal/store.DocBuilder": {"Add": true},
	// SetCapacity resizes the LRU without taking the cache lock; it is a
	// startup-only call by contract, before any querying goroutine exists.
	"internal/store.Cache": {"SetCapacity": true},
	// Same contract for the search-plan cache: Get/Put are locked and
	// worker-safe, SetCapacity is startup-only.
	"internal/match.PlanCache": {"SetCapacity": true},
	// The write-ahead log serializes under the store writer lock, which
	// its callers (Durable.ApplyBatch, checkpointing) hold by contract;
	// Append and Reset write the file position and record counter without
	// their own lock, so a bare goroutine call interleaves frames.
	"internal/store.WAL": {"Append": true, "Reset": true},
	// The remote selector's tuning knobs write plain fields read by every
	// in-flight SelectShard call: startup-only by contract, before the
	// selector is handed to an engine. Probe/Health stay off this list —
	// the health slice is mutex-guarded.
	"internal/store.RemoteSelector": {
		"SetTimeout": true, "SetRetries": true, "SetHedgeAfter": true, "SetAllowPartial": true,
	},
	// The streaming pipeline's sinks and emitters mutate receiver state
	// (row buffers, ordinals, flush clocks) without locks: Emit runs on the
	// query's coordinating goroutine by contract, never from pool workers.
	"internal/exec.CollectSink": {"Emit": true},
	"internal/exec.streamState": {"emit": true},
	"internal/exec.rowEmitter":  {"group": true, "flush": true, "close": true},
	"internal/server.rowSink":   {"Emit": true},
	// The NDJSON writer shares one encoder and flush clock per response;
	// line/flush are coordinator-only for the same reason.
	"internal/server.ndjsonWriter": {"line": true, "flush": true},
}

// GoSafe inspects goroutine bodies (as in algebra.ParallelSelection) for
// the two race shapes that matter in this codebase: calls to known
// non-thread-safe mutators, and writes to captured variables that are not
// index-partitioned. A write whose access path goes through an index
// expression (results[i].ms = ...) is the sanctioned partitioning pattern:
// each worker owns a disjoint slot. A write to a bare captured identifier
// (out = append(out, ...)) is shared state and is flagged.
var GoSafe = &Analyzer{
	Name: "gosafe",
	Doc:  "flag goroutine bodies that call non-thread-safe methods or write captured variables without index partitioning",
	Run:  runGoSafe,
}

func runGoSafe(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// go g.AddNode(...) — direct unsafe call as the goroutine.
			if typ, m := unsafeMethod(pass, gs.Call); m != "" {
				pass.Reportf(gs.Pos(), "goroutine calls non-thread-safe %s.%s", typ, m)
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(pass, lit)
			return true
		})
	}
}

func checkGoroutineBody(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if typ, m := unsafeMethod(pass, s); m != "" {
				pass.Reportf(s.Pos(), "goroutine body calls non-thread-safe %s.%s; synchronize or move outside the goroutine", typ, m)
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkSharedWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkSharedWrite(pass, lit, s.X)
		}
		return true
	})
}

// checkSharedWrite flags an assignment target rooted at a variable captured
// from outside the goroutine unless the access path is index-partitioned.
func checkSharedWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr) {
	indexed := false
	e := lhs
walk:
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			indexed = true
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			break walk
		}
	}
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" || indexed {
		return
	}
	obj := pass.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
		return // declared inside the goroutine: worker-local
	}
	pass.Reportf(lhs.Pos(), "goroutine writes captured variable %q without index partitioning; give each worker its own slot (x[i] = ...) or synchronize", id.Name)
}

// unsafeMethod reports whether the call is a method in unsafeInGoroutine,
// returning the type key and method name.
func unsafeMethod(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", ""
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	key := trimToInternal(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
	if unsafeInGoroutine[key][sel.Sel.Name] {
		return key, sel.Sel.Name
	}
	return "", ""
}
