package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxPollPkgs are the packages whose loops run query-sized work: the
// backtracking matcher, the algebra operators and the worker pool. A loop
// there that can iterate unboundedly and never observes cancellation keeps
// burning CPU after the client hung up — the admission-controlled server
// then drains slots it can never reclaim.
var ctxPollPkgs = []string{
	"internal/match",
	"internal/algebra",
	"internal/pool",
	// The store runs the shard coordinator's merge loop and the remote
	// selector's retry loop: both iterate per-shard work that must die
	// with the query's context.
	"internal/store",
}

// ctxPollFuncs are repo functions that ARE a cancellation poll: calling
// one on a dominating path satisfies the analyzer. Keys are methodKeyOf /
// funcKey spellings.
var ctxPollFuncs = map[string]bool{
	// searcher.cancelled selects on the context's Done channel and counts
	// the check; it is the matcher's canonical per-step poll.
	"internal/match.searcher.cancelled": true,
}

// CtxPoll requires every unbounded-shape loop in match/algebra/pool to
// poll cancellation on a path that dominates the loop's latch — i.e. on
// every iteration, not just on some branch. A loop has unbounded shape
// when it is `for {}`, a while-style `for cond {}`, or any loop whose body
// calls into local recursion (data-sized depth). Polls are recognised
// structurally, never by name:
//
//   - ctx.Err() on a context.Context value
//   - a receive (direct or in a select) from ctx.Done(), from a channel of
//     type chan struct{} / <-chan struct{}, or from a variable whose
//     reaching definitions include a ctx.Done() call
//   - a call to a registered poll helper (ctxPollFuncs)
//   - delegation: passing a context.Context to a callee, which then owns
//     the polling obligation
//
// Bounded 3-clause and range loops without recursive calls are exempt, as
// are _test.go files (tests run under the harness deadline).
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "unbounded loops in match/algebra/pool must poll ctx.Err()/ctx.Done() on a dominating path",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) {
	if !pathHasAnySuffix(pass.Path, ctxPollPkgs) {
		return
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	calls := map[*types.Func][]*types.Func{}
	for caller, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if callee, ok := pass.Info.Uses[id].(*types.Func); ok {
					if _, isLocal := decls[callee]; isLocal {
						calls[caller] = append(calls[caller], callee)
					}
				}
			}
			return true
		})
	}
	onCycle := func(fn *types.Func) bool {
		return reaches(calls, fn, fn, map[*types.Func]bool{})
	}
	for _, file := range pass.Files {
		for _, u := range funcUnits(file) {
			if isTestFile(pass, u.Body) {
				continue
			}
			checkUnitLoops(pass, u, decls, onCycle)
		}
	}
}

func checkUnitLoops(pass *Pass, u funcUnit, decls map[*types.Func]*ast.FuncDecl, onCycle func(*types.Func) bool) {
	cfg := NewCFG(u.Body)
	polls := collectPolls(pass, cfg, u)
	walkUnit(u, func(n ast.Node) bool {
		var loopStmt ast.Stmt
		switch s := n.(type) {
		case *ast.ForStmt:
			loopStmt = s
		case *ast.RangeStmt:
			loopStmt = s
		default:
			return true
		}
		loop := cfg.LoopOf(loopStmt)
		if loop == nil {
			return true
		}
		if !unboundedShape(pass, loopStmt, u, decls, onCycle) {
			return true
		}
		for _, blk := range polls {
			// In-loop (head dominates it) and on every iteration
			// (dominates the latch).
			if cfg.Dominates(loop.Head, blk) && cfg.Dominates(blk, loop.Latch) {
				return true
			}
		}
		pass.Reportf(loopStmt.Pos(), "unbounded loop in %s never polls cancellation; check ctx.Err(), select on ctx.Done(), or call a registered poll helper on a path reaching every iteration", u.Name)
		return true
	})
}

// walkUnit inspects the unit's body without descending into nested
// function literals (each is its own unit) or defer bodies' literals.
func walkUnit(u funcUnit, fn func(ast.Node) bool) {
	ast.Inspect(u.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.Lit {
			return false
		}
		return fn(n)
	})
}

// unboundedShape reports whether the loop can iterate an unbounded number
// of times: `for {}`, while-style `for cond {}`, or a body that reenters
// local recursion.
func unboundedShape(pass *Pass, loopStmt ast.Stmt, u funcUnit, decls map[*types.Func]*ast.FuncDecl, onCycle func(*types.Func) bool) bool {
	if fs, ok := loopStmt.(*ast.ForStmt); ok {
		if fs.Cond == nil {
			return true
		}
		if fs.Init == nil && fs.Post == nil {
			return true
		}
	}
	var body *ast.BlockStmt
	switch s := loopStmt.(type) {
	case *ast.ForStmt:
		body = s.Body
	case *ast.RangeStmt:
		body = s.Body
	}
	carrying := false
	ast.Inspect(body, func(n ast.Node) bool {
		if carrying {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pass, call)
		if callee == nil {
			return true
		}
		if _, isLocal := decls[callee]; isLocal && onCycle(callee) {
			carrying = true
		}
		return true
	})
	return carrying
}

// collectPolls returns the blocks of every cancellation-poll node in the
// unit. Polls inside defer bodies don't count — deferred code runs at
// function exit, not per iteration.
func collectPolls(pass *Pass, cfg *CFG, u funcUnit) []*Block {
	var rd *RD // built lazily: only needed for channel-provenance checks
	reachesDone := func(id *ast.Ident) bool {
		if rd == nil {
			rd = NewRD(cfg, pass.Info, paramsOf(pass, u))
		}
		for _, def := range rd.DefsReaching(id) {
			if call, ok := ast.Unparen(def.Rhs).(*ast.CallExpr); ok {
				if methodKeyOf(calleeOf(pass, call)) == "context.Context.Done" {
					return true
				}
			}
		}
		return false
	}
	isPollRecv := func(x ast.Expr) bool {
		x = ast.Unparen(x)
		if call, ok := x.(*ast.CallExpr); ok {
			return methodKeyOf(calleeOf(pass, call)) == "context.Context.Done"
		}
		if tv, ok := pass.Info.Types[x]; ok && tv.Type != nil {
			if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
				if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
					return true
				}
			}
		}
		if id, ok := x.(*ast.Ident); ok {
			return reachesDone(id)
		}
		return false
	}
	var polls []*Block
	add := func(n ast.Node) {
		if blk := cfg.BlockOf(n); blk != nil {
			polls = append(polls, blk)
		}
	}
	ast.Inspect(u.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != u.Lit {
				return false
			}
		case *ast.DeferStmt:
			return false
		case *ast.SelectStmt:
			// Comm expressions are all evaluated when the select runs, so
			// a polling receive in any clause polls at the select head —
			// even when another clause (default) is taken.
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CommClause)
				if cc.Comm == nil {
					continue
				}
				polled := false
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					if ue, ok := m.(*ast.UnaryExpr); ok && ue.Op == token.ARROW && isPollRecv(ue.X) {
						polled = true
					}
					return !polled
				})
				if polled {
					add(n)
					break
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isPollRecv(n.X) {
				add(n)
			}
		case *ast.CallExpr:
			fn := calleeOf(pass, n)
			if fn != nil {
				key := methodKeyOf(fn)
				if key == "context.Context.Err" || ctxPollFuncs[key] ||
					(pkgLevelFuncOf(fn) != "" && ctxPollFuncs[trimToInternal(pkgLevelFuncOf(fn))+"."+fn.Name()]) {
					add(n)
					return true
				}
			}
			// Delegation: handing the context to a callee transfers the
			// polling obligation.
			for _, arg := range n.Args {
				if tv, ok := pass.Info.Types[arg]; ok && isContextType(tv.Type) {
					add(n)
					return true
				}
			}
		}
		return true
	})
	return polls
}
