package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseUnit type-checks one source file and returns the pass plus the named
// function's unit, CFG and entry params.
func parseUnit(t *testing.T, src, fn string) (*Pass, funcUnit, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "unit.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("unit", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &Pass{Fset: fset, Path: "unit", Files: []*ast.File{file}, Pkg: pkg, Info: info}
	for _, u := range funcUnits(file) {
		if u.Name == fn {
			return pass, u, NewCFG(u.Body)
		}
	}
	t.Fatalf("function %q not found", fn)
	return nil, funcUnit{}, nil
}

// findCall locates the first call whose printed callee contains name.
func findCall(t *testing.T, body ast.Node, name string) *ast.CallExpr {
	t.Helper()
	var out *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == name {
				out = call
				return false
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == name {
				out = call
				return false
			}
		}
		return true
	})
	if out == nil {
		t.Fatalf("call %q not found", name)
	}
	return out
}

const domSrc = `package unit

func sink(int)
func pre()
func inBranch()
func post()

func guarded(n int) {
	pre()
	if n > 0 {
		inBranch()
	}
	post()
}

func loop(n int) {
	for i := 0; i < n; i++ {
		pre()
		if i%2 == 0 {
			continue
		}
		inBranch()
	}
	post()
}

func whileTrue(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		pre()
	}
}
`

func TestDominance(t *testing.T) {
	_, u, cfg := parseUnit(t, domSrc, "guarded")
	preB := cfg.BlockOf(findCall(t, u.Body, "pre"))
	inB := cfg.BlockOf(findCall(t, u.Body, "inBranch"))
	postB := cfg.BlockOf(findCall(t, u.Body, "post"))
	if preB == nil || inB == nil || postB == nil {
		t.Fatal("calls not mapped to blocks")
	}
	if !cfg.Dominates(preB, inB) || !cfg.Dominates(preB, postB) {
		t.Error("pre() should dominate both inBranch() and post()")
	}
	if cfg.Dominates(inB, postB) {
		t.Error("inBranch() is conditional; must not dominate post()")
	}
}

func TestLoopLatchDominance(t *testing.T) {
	_, u, cfg := parseUnit(t, domSrc, "loop")
	var forStmt *ast.ForStmt
	ast.Inspect(u.Body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && forStmt == nil {
			forStmt = f
		}
		return true
	})
	loop := cfg.LoopOf(forStmt)
	if loop == nil {
		t.Fatal("loop not registered")
	}
	preB := cfg.BlockOf(findCall(t, u.Body, "pre"))
	inB := cfg.BlockOf(findCall(t, u.Body, "inBranch"))
	if !cfg.Dominates(preB, loop.Latch) {
		t.Error("unconditional body stmt must dominate the latch")
	}
	if cfg.Dominates(inB, loop.Latch) {
		t.Error("stmt after continue-guard must NOT dominate the latch")
	}
	if !cfg.Dominates(loop.Head, loop.Latch) || !cfg.Dominates(loop.Head, loop.Exit) {
		t.Error("head must dominate latch and exit")
	}
}

func TestSelectPollDominatesLatch(t *testing.T) {
	_, u, cfg := parseUnit(t, domSrc, "whileTrue")
	var forStmt *ast.ForStmt
	ast.Inspect(u.Body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && forStmt == nil {
			forStmt = f
		}
		return true
	})
	loop := cfg.LoopOf(forStmt)
	if loop == nil {
		t.Fatal("loop not registered")
	}
	var sel *ast.SelectStmt
	ast.Inspect(u.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			sel = s
		}
		return true
	})
	selB := cfg.BlockOf(sel)
	if selB == nil {
		t.Fatal("select head not mapped")
	}
	if !cfg.Dominates(selB, loop.Latch) {
		t.Error("select head at loop top must dominate the latch")
	}
}

const rdSrc = `package unit

func mk() chan struct{} { return nil }
func other() chan struct{} { return nil }
func use(chan struct{})

func reassign(cond bool) {
	ch := mk()
	if cond {
		ch = other()
	}
	use(ch)
}

func straight() {
	ch := mk()
	ch = other()
	use(ch)
}
`

func TestReachingDefs(t *testing.T) {
	pass, u, cfg := parseUnit(t, rdSrc, "reassign")
	rd := NewRD(cfg, pass.Info, paramsOf(pass, u))
	call := findCall(t, u.Body, "use")
	arg := call.Args[0].(*ast.Ident)
	defs := rd.DefsReaching(arg)
	if len(defs) != 2 {
		t.Fatalf("want both mk() and other() defs reaching, got %d", len(defs))
	}

	pass, u, cfg = parseUnit(t, rdSrc, "straight")
	rd = NewRD(cfg, pass.Info, paramsOf(pass, u))
	call = findCall(t, u.Body, "use")
	defs = rd.DefsReaching(call.Args[0].(*ast.Ident))
	if len(defs) != 1 {
		t.Fatalf("straight-line redefinition must kill: got %d defs", len(defs))
	}
	if id, ok := ast.Unparen(defs[0].Rhs).(*ast.CallExpr); !ok {
		t.Fatal("surviving def should be the other() call")
	} else if fn, ok := id.Fun.(*ast.Ident); !ok || fn.Name != "other" {
		t.Fatalf("surviving def should be other(), got %v", defs[0].Rhs)
	}
}

const taintSrc = `package unit

import "time"

func consume(any)

func flows() {
	t0 := time.Now()
	d := time.Since(t0)
	ms := d.Milliseconds()
	clean := 42
	consume(ms)
	consume(clean)
}
`

func TestTaintClosure(t *testing.T) {
	pass, u, _ := parseUnit(t, taintSrc, "flows")
	tainted := taintedVars(pass, u, taintSpec{
		seed: func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			fn := calleeOf(pass, call)
			return isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Since")
		},
		// Method calls break taint by default; opt duration accessors in.
		carrier: func(e ast.Expr, carries func(ast.Expr) bool) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			return ok && carries(sel.X)
		},
	})
	names := map[string]bool{}
	for v := range tainted {
		names[v.Name()] = true
	}
	for _, want := range []string{"t0", "d", "ms"} {
		if !names[want] {
			t.Errorf("%s should be tainted", want)
		}
	}
	if names["clean"] {
		t.Error("clean must not be tainted")
	}
}
