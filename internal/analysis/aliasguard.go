package analysis

import (
	"go/ast"
	"go/types"
)

// aliasReturns are the accessors whose results alias shared immutable
// state: cached whole-program results, snapshot document maps, canonical
// collections and shard partitions. The store hands these out by
// reference — "callers must treat it as read-only" — and the engine layer
// owns cloning. A write through one of these aliases corrupts every other
// holder, including cached results served to future queries. Same
// registry style as gosafe's table.
var aliasReturns = map[string]bool{
	"internal/store.Cache.Get":         true,
	"internal/store.Snapshot.Doc":      true,
	"internal/store.Doc.Collection":    true,
	"internal/store.Doc.Shards":        true,
	"internal/store.DocStore.Snapshot": true,
	// Doc.Stats memoizes one inventory per document and hands the same
	// pointer (and its attribute maps) to every caller — the /v2/schema
	// handler must render it without writing through it.
	"internal/store.Doc.Stats": true,
	// PlanCache.Get hands out one cached *Plan to every concurrent search
	// over the same (pattern shape, graph, options): the feasible-mate
	// lists and order are shared, searchers copy what they mutate.
	"internal/match.PlanCache.Get": true,
	// ShardResult.Group returns one merged member list by reference; the
	// coordinator streams the same backing slice to the consumer, and a
	// remote result additionally aliases mappings rebound over the shard's
	// canonical graphs. Consumers render or clone, never write.
	"internal/store.ShardResult.Group": true,
}

// AliasGuard flags mutations of values obtained from the registered
// deep-clone-contract accessors (aliasReturns). Taint follows
// assignments, type assertions, conversions, indexing and field
// selection; calling a method on the value launders it — Clone() and
// toResult() are exactly the sanctioned copy-out points. Flagged writes:
// field stores, element stores, append, delete, clear, inc/dec through a
// tainted base.
var AliasGuard = &Analyzer{
	Name: "aliasguard",
	Doc:  "values returned from store cache/snapshot accessors must not be mutated",
	Run:  runAliasGuard,
}

func runAliasGuard(pass *Pass) {
	// The defining package manages its own representation (builders fill
	// collections before they freeze); the contract binds everyone else.
	if pathHasSuffix(pass.Path, "internal/store") {
		return
	}
	for _, file := range pass.Files {
		for _, u := range funcUnits(file) {
			checkAliasUnit(pass, u)
		}
	}
}

func checkAliasUnit(pass *Pass, u funcUnit) {
	seed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		return aliasReturns[methodKeyOf(calleeOf(pass, call))]
	}
	tainted := taintedVars(pass, u, taintSpec{seed: seed})
	carries := func(e ast.Expr) bool {
		return aliasBaseCarries(pass, e, tainted, seed)
	}
	report := func(n ast.Node, op string) {
		pass.Reportf(n.Pos(), "%s through alias of a shared store value in %s; Cache.Get/Snapshot.Doc/Doc.Collection results are read-only — clone before mutating", op, u.Name)
	}
	walkUnit(u, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch target := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if carries(target.X) {
						report(n, "field write")
					}
				case *ast.IndexExpr:
					if carries(target.X) {
						report(n, "element write")
					}
				case *ast.StarExpr:
					if carries(target.X) {
						report(n, "pointer write")
					}
				}
			}
		case *ast.IncDecStmt:
			switch target := ast.Unparen(n.X).(type) {
			case *ast.SelectorExpr:
				if carries(target.X) {
					report(n, "field write")
				}
			case *ast.IndexExpr:
				if carries(target.X) {
					report(n, "element write")
				}
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || len(n.Args) == 0 {
				return true
			}
			switch id.Name {
			case "append", "delete", "clear":
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if carries(n.Args[0]) {
					report(n, id.Name)
				}
			}
		}
		return true
	})
}

// aliasBaseCarries reports whether the written-through base expression
// aliases a registered shared value: a tainted variable, a direct
// registry-call result, or a selector/index/assert chain over one. A
// method call in the chain breaks the alias (the sanctioned copy-out).
func aliasBaseCarries(pass *Pass, e ast.Expr, tainted map[*types.Var]bool, seed func(ast.Expr) bool) bool {
	e = ast.Unparen(e)
	if seed(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := pass.Info.Uses[e].(*types.Var)
		return ok && tainted[v]
	case *ast.SelectorExpr:
		return aliasBaseCarries(pass, e.X, tainted, seed)
	case *ast.IndexExpr:
		return aliasBaseCarries(pass, e.X, tainted, seed)
	case *ast.SliceExpr:
		return aliasBaseCarries(pass, e.X, tainted, seed)
	case *ast.TypeAssertExpr:
		return aliasBaseCarries(pass, e.X, tainted, seed)
	case *ast.StarExpr:
		return aliasBaseCarries(pass, e.X, tainted, seed)
	case *ast.CallExpr:
		if isTypeConversion(pass, e) && len(e.Args) == 1 {
			return aliasBaseCarries(pass, e.Args[0], tainted, seed)
		}
		return false
	}
	return false
}
