package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// parsedPkg is one directory's worth of parsed, not-yet-type-checked files.
type parsedPkg struct {
	path    string // import path
	dir     string
	files   []*ast.File
	imports map[string]bool // module-internal imports only
}

// LoadOptions widens what Load pulls into the analysis universe.
type LoadOptions struct {
	// IncludeTests loads _test.go files as well. In-package test files
	// join their package's Pass; external foo_test packages become their
	// own Pass whose Path carries a " [test]" suffix (so package-scoped
	// analyzer registries never match them by accident).
	IncludeTests bool
}

// LoadModule locates go.mod in root and loads every non-test package in the
// module. This is the entry point cmd/gqlvet uses.
func LoadModule(fset *token.FileSet, root string) ([]*Pass, error) {
	return LoadModuleOpts(fset, root, LoadOptions{})
}

// LoadModuleOpts is LoadModule with explicit options.
func LoadModuleOpts(fset *token.FileSet, root string, opts LoadOptions) ([]*Pass, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	return LoadOpts(fset, root, modPath, opts)
}

// Load parses and type-checks every non-test package under root. A
// directory <root>/a/b maps to import path <modPath>/a/b (root itself to
// modPath). Module-internal imports resolve to the packages being loaded;
// everything else (the standard library) resolves through the source
// importer, so no compiled export data is needed.
func Load(fset *token.FileSet, root, modPath string) ([]*Pass, error) {
	return LoadOpts(fset, root, modPath, LoadOptions{})
}

// LoadOpts is Load with explicit options.
func LoadOpts(fset *token.FileSet, root, modPath string, opts LoadOptions) ([]*Pass, error) {
	pkgs, err := parseTree(fset, root, modPath, opts)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		done:     map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var passes []*Pass
	for _, pp := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(pp.path, fset, pp.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", pp.path, err)
		}
		imp.done[pp.path] = pkg
		passes = append(passes, &Pass{
			Fset:  fset,
			Path:  pp.path,
			Files: pp.files,
			Pkg:   pkg,
			Info:  info,
		})
	}
	sort.Slice(passes, func(i, j int) bool { return passes[i].Path < passes[j].Path })
	return passes, nil
}

// moduleImporter serves already-type-checked module packages and falls back
// to compiling the standard library from source.
type moduleImporter struct {
	done     map[string]*types.Package
	fallback types.Importer
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.done[path]; ok {
		return pkg, nil
	}
	return m.fallback.Import(path)
}

// parseTree walks root collecting one parsedPkg per directory that holds
// Go files (plus, with IncludeTests, one per external foo_test package).
// testdata, hidden and underscore-prefixed directories are skipped, as the
// go tool does.
func parseTree(fset *token.FileSet, root, modPath string, opts LoadOptions) (map[string]*parsedPkg, error) {
	pkgs := map[string]*parsedPkg{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !opts.IncludeTests {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ipath := modPath
		if rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		// External test packages (package foo_test) type-check as their
		// own unit; in-package _test.go files join the base package.
		if isTest && strings.HasSuffix(file.Name.Name, "_test") {
			ipath += " [test]"
		}
		pp := pkgs[ipath]
		if pp == nil {
			pp = &parsedPkg{path: ipath, dir: dir, imports: map[string]bool{}}
			pkgs[ipath] = pp
		}
		pp.files = append(pp.files, file)
		for _, im := range file.Imports {
			q := strings.Trim(im.Path.Value, `"`)
			if q == modPath || strings.HasPrefix(q, modPath+"/") {
				pp.imports[q] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", root)
	}
	// Deterministic file order within each package.
	for _, pp := range pkgs {
		sort.Slice(pp.files, func(i, j int) bool {
			return fset.Position(pp.files[i].Pos()).Filename < fset.Position(pp.files[j].Pos()).Filename
		})
	}
	return pkgs, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(pkgs map[string]*parsedPkg) ([]*parsedPkg, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		doneMark  = 2
	)
	state := map[string]int{}
	var order []*parsedPkg
	var visit func(path string) error
	visit = func(path string) error {
		pp, ok := pkgs[path]
		if !ok {
			return nil // import of a module path not under root (not loadable)
		}
		switch state[path] {
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case doneMark:
			return nil
		}
		state[path] = visiting
		deps := make([]string, 0, len(pp.imports))
		for d := range pp.imports {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = doneMark
		order = append(order, pp)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
