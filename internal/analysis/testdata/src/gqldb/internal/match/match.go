// Package match is analyzer corpus: hot-path cases for panicfree,
// valuecmp, gosafe and recbound, with both flagged and allowed forms.
package match

import (
	"fmt"
	"reflect"

	"gqldb/internal/graph"
	"gqldb/internal/index"
	"gqldb/internal/obs"
)

// ---- panicfree ----

// Explode panics on a hot path: flagged.
func Explode() {
	panic("match: boom") // want:panicfree `panic in hot-path function Explode`
}

// SafeErr returns an error instead: allowed.
func SafeErr() error {
	return fmt.Errorf("match: nothing to do")
}

// ---- valuecmp ----

// EqValues compares Values with ==: flagged.
func EqValues(a, b graph.Value) bool {
	return a == b // want:valuecmp `== on graph.Value`
}

// NeqValues compares Values with !=: flagged.
func NeqValues(a, b graph.Value) bool {
	return a != b // want:valuecmp `!= on graph.Value`
}

// DeepEqValues uses reflect.DeepEqual: flagged.
func DeepEqValues(a, b []graph.Value) bool {
	return reflect.DeepEqual(a, b) // want:valuecmp `reflect.DeepEqual on graph.Value`
}

// EqTuples compares Tuple pointers with ==: flagged.
func EqTuples(a, b *graph.Tuple) bool {
	return a == b // want:valuecmp `== on graph.Tuple`
}

// NilCheck against nil is a presence check: allowed.
func NilCheck(t *graph.Tuple) bool {
	return t == nil
}

// EqValuesOK goes through the sanctioned method: allowed.
func EqValuesOK(a, b graph.Value) bool {
	return a.Equal(b)
}

// ---- gosafe ----

// Stats mimics the evaluation statistics; RecordOp appends without
// synchronization, so it must only run on the coordinating goroutine.
type Stats struct {
	Ops []string
}

// RecordOp appends one operator record.
func (s *Stats) RecordOp(op string) {
	s.Ops = append(s.Ops, op)
}

// RacyWorkers shows each racy shape; PartitionedWorkers below is the
// sanctioned form.
func RacyWorkers(g *graph.Graph, b *graph.Builder, st *Stats, in *index.Interner, sp *obs.Span, vals []int) []int {
	var shared []int
	ch := make(chan struct{})
	go func() {
		g.AddNode("x")             // want:gosafe `non-thread-safe internal/graph.Graph.AddNode`
		b.AddNode("y")             // want:gosafe `non-thread-safe internal/graph.Builder.AddNode`
		b.SetTuple(nil)            // want:gosafe `non-thread-safe internal/graph.Builder.SetTuple`
		st.RecordOp("selection")   // want:gosafe `non-thread-safe internal/match.Stats.RecordOp`
		in.Intern("a")             // want:gosafe `non-thread-safe internal/index.Interner.Intern`
		sp.End()                   // want:gosafe `non-thread-safe internal/obs.Span.End`
		sp.SetAttr("k", "v")       // want:gosafe `non-thread-safe internal/obs.Span.SetAttr`
		shared = append(shared, 1) // want:gosafe `captured variable "shared"`
		close(ch)
	}()
	<-ch
	return shared
}

// TracedWorkers uses only the worker-safe span mutators: allowed.
func TracedWorkers(sp *obs.Span, vals []int) {
	ch := make(chan struct{})
	go func() {
		child := sp.StartChild("op")
		for range vals {
			sp.Add("items", 1)
		}
		_ = child
		close(ch)
	}()
	<-ch
}

// PartitionedWorkers writes only worker-owned slots and locals: allowed.
func PartitionedWorkers(vals []int) []int {
	results := make([]int, len(vals))
	ch := make(chan struct{})
	go func() {
		local := 0
		for i := range vals {
			local++
			results[i] = vals[i] * 2
		}
		_ = local
		close(ch)
	}()
	<-ch
	return results
}

// SuppressedWrite shows the explicit escape hatch: allowed via comment.
func SuppressedWrite() int {
	total := 0
	ch := make(chan struct{})
	go func() {
		total = 41 //gqlvet:ignore gosafe -- single goroutine, joined before read
		close(ch)
	}()
	<-ch
	return total + 1
}

// ---- recbound ----

// Collatz recurses with no visible bound: flagged.
func Collatz(n int) int { // want:recbound `recursive function Collatz`
	if n <= 1 {
		return 0
	}
	if n%2 == 0 {
		return 1 + Collatz(n/2)
	}
	return 1 + Collatz(3*n+1)
}

// Even and Odd are mutually recursive with no bound: both flagged.
func Even(n int) bool { // want:recbound `recursive function Even`
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

// Odd is the other half of the cycle.
func Odd(n int) bool { // want:recbound `recursive function Odd`
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// WalkDepth threads a depth budget: allowed.
func WalkDepth(n, depth int) int {
	if depth <= 0 || n <= 1 {
		return 0
	}
	return 1 + WalkDepth(n/2, depth-1)
}

// DrillLucky names a parameter "depth" but never checks or decrements it —
// the bound is spelling, not dataflow. The lexical scan accepted this;
// the dataflow rules flag it.
func DrillLucky(n, depth int) int { // want:recbound `recursive function DrillLucky`
	if n <= 1 {
		return depth
	}
	return DrillLucky(n/2, depth)
}

// DrillChecked passes depth through unchanged but gates on it: allowed
// (the check is the bound; think cancellation flags).
func DrillChecked(n, depth int) int {
	if depth <= 0 || n <= 1 {
		return 0
	}
	return DrillChecked(n/2, depth)
}

// GuardedOffPath checks depth only on a sibling branch: the recursion at
// the bottom runs whether or not the check did, so the check dominates
// nothing. The lexical rule ("a bound word appears in some condition")
// accepted this; the dominance rule flags it.
func GuardedOffPath(n, depth int) int { // want:recbound `recursive function GuardedOffPath`
	if n > 100 {
		if depth <= 0 {
			return 0
		}
	}
	return GuardedOffPath(n/2, depth)
}

// CheckedAfter checks depth only after the recursive call has already
// happened — a gate behind the horse. Flagged under dominance; the lexical
// rule accepted it.
func CheckedAfter(n, depth int) int { // want:recbound `recursive function CheckedAfter`
	if n <= 1 {
		return 0
	}
	r := CheckedAfter(n/2, depth)
	if depth <= 0 {
		return 0
	}
	return r
}

// LoopGuarded recurses inside a loop whose head condition checks the
// budget: the head dominates the body, so every recursive call is gated —
// recbound allows it. The same loop carries recursion with no
// cancellation poll, so ctxpoll (rightly) still fires on it.
func LoopGuarded(n, depth int) int {
	total := 0
	for i := 0; i < depth; i++ { // want:ctxpoll `never polls`
		total += LoopGuarded(n/2, depth)
	}
	return total
}

// ShortCircuitGuard gates the recursion inside the same condition via
// short-circuit evaluation: allowed.
func ShortCircuitGuard(n, depth int) bool {
	if depth > 0 && ShortCircuitGuard(n/2, depth) {
		return true
	}
	return false
}

// Iterative has no recursion at all: allowed.
func Iterative(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// ---- ctxpoll (registry poll helper) ----

// searcher mimics the real matcher's cancellation plumbing: the context's
// Done channel is captured as a field, and cancelled() is the registered
// poll helper (ctxPollFuncs).
type searcher struct {
	ctxDone <-chan struct{}
	done    bool
	cand    [][]int
}

// cancelled is the canonical per-step poll.
func (s *searcher) cancelled() bool {
	select {
	case <-s.ctxDone:
		return true
	default:
		return false
	}
}

// rec backtracks with a registry poll dominating every iteration of the
// candidate loop: allowed by ctxpoll (and the cancel-word check dominates
// the recursion, so recbound allows it too).
func (s *searcher) rec(i int) {
	if i >= len(s.cand) {
		return
	}
	for range s.cand[i] {
		if s.done || s.cancelled() {
			return
		}
		s.rec(i + 1)
	}
}

// drill recurses under its loop without any poll: ctxpoll flags the loop
// (and recbound flags the function — no bound dominates the call).
func (s *searcher) drill(i int) { // want:recbound `recursive function drill`
	if i >= len(s.cand) {
		return
	}
	for range s.cand[i] { // want:ctxpoll `never polls`
		s.drill(i + 1)
	}
}

// ---- plan cache (gosafe + aliasguard registries) ----

// Plan mimics the cached planning output: shared, read-only after Put.
type Plan struct {
	Order   []int
	EstCost float64
}

// PlanCache mimics the search-plan cache; Get hands out shared plans and
// SetCapacity is the startup-only unsynchronized mutator.
type PlanCache struct {
	capacity int
	plans    map[string]*Plan
}

// SetCapacity resizes the bound without locking.
func (c *PlanCache) SetCapacity(n int) { c.capacity = n }

// Get returns the shared plan for key.
func (c *PlanCache) Get(key string) (*Plan, bool) {
	p, ok := c.plans[key]
	return p, ok
}

// ResizeInWorker calls the startup-only mutator from a goroutine: flagged.
func ResizeInWorker(c *PlanCache) {
	ch := make(chan struct{})
	go func() {
		c.SetCapacity(8) // want:gosafe `non-thread-safe internal/match.PlanCache.SetCapacity`
		close(ch)
	}()
	<-ch
}

// ResizeAtStartup calls it before any worker exists: allowed.
func ResizeAtStartup(c *PlanCache) {
	c.SetCapacity(8)
}

// scribblePlan writes through the shared cached plan — every concurrent
// search holding it sees the corruption: flagged.
func scribblePlan(c *PlanCache) {
	pl, ok := c.Get("shape")
	if !ok {
		return
	}
	pl.Order[0] = 1 // want:aliasguard `element write`
	pl.EstCost = 0  // want:aliasguard `field write`
}

// adoptPlan copies the mutable parts out first — the sanctioned shape the
// real searcher uses: allowed.
func adoptPlan(c *PlanCache) []int {
	pl, ok := c.Get("shape")
	if !ok {
		return nil
	}
	order := make([]int, len(pl.Order))
	copy(order, pl.Order)
	return order
}

var _ = []any{ResizeInWorker, ResizeAtStartup, scribblePlan, adoptPlan}
