// helper_test.go: corpus for test-file semantics. The loader only sees
// this file under LoadOptions{IncludeTests}; panicfree and errwrap's
// message-prefix rule relax in test files, while gosafe and the %w rule
// stay in force.
package match

import "fmt"

// mustFixture panics on bad input: allowed — test helpers fail loudly,
// the no-panic contract binds the production query path only.
func mustFixture(ok bool) {
	if !ok {
		panic("bad fixture")
	}
}

// fixtureErr returns an unprefixed message: allowed — the prefix
// convention is scoped to non-test internal code.
func fixtureErr() error {
	return fmt.Errorf("fixture not ready")
}

// flattenErr formats a cause without %w: still flagged — test assertions
// rely on errors.Is just as much as the server does.
func flattenErr(err error) error {
	return fmt.Errorf("fixture failed: %v", err) // want:errwrap `without %w`
}

// racyFixture writes a captured variable from a goroutine: gosafe stays
// on in test files — races in tests corrupt the results being asserted.
func racyFixture() []int {
	var shared []int
	ch := make(chan struct{})
	go func() {
		shared = append(shared, 1) // want:gosafe `captured variable "shared"`
		close(ch)
	}()
	<-ch
	return shared
}

var _ = []any{mustFixture, fixtureErr, flattenErr, racyFixture}
