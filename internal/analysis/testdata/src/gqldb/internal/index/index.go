// Package index is a miniature stand-in for gqldb/internal/index with the
// one method the gosafe analyzer knows is not thread-safe.
package index

// Interner mimics the label interner.
type Interner struct {
	ids   map[string]int32
	names []string
}

// Intern mutates the intern tables — not safe under concurrency.
func (in *Interner) Intern(label string) int32 {
	if id, ok := in.ids[label]; ok {
		return id
	}
	id := int32(len(in.names))
	if in.ids == nil {
		in.ids = map[string]int32{}
	}
	in.ids[label] = id
	in.names = append(in.names, label)
	return id
}

// Name is a read-only accessor.
func (in *Interner) Name(id int32) string { return in.names[id] }
