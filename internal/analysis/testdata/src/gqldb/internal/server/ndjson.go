// ndjson.go: corpus for the v2 streaming frontend's determinism contract.
// NDJSON lines must leave in canonical order — a wire stream that inherits
// Go's randomized map iteration order is a nondeterministic API response,
// the exact bug class detmerge exists to catch at the merge layer.
package server

import "sort"

// EmitVarsSorted renders the final graph variables as NDJSON lines in
// sorted name order — the sanctioned FromMap idiom: allowed.
func EmitVarsSorted(vars map[string]string) []string {
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	lines := make([]string, 0, len(names))
	for _, name := range names {
		lines = append(lines, name+"="+vars[name])
	}
	return lines
}

// EmitVarsUnsorted appends one line per variable straight out of the map
// range: the stream order would differ between identical runs. Flagged.
func EmitVarsUnsorted(vars map[string]string) []string {
	var lines []string
	for name, g := range vars {
		lines = append(lines, name+"="+g) // want:detmerge `inherits randomized map order`
	}
	return lines
}

// StreamVarsUnsorted pushes lines into the emission channel in map order:
// the NDJSON writer on the other end inherits the randomization. Flagged.
func StreamVarsUnsorted(vars map[string]string, lines chan string) {
	for name := range vars {
		lines <- name // want:detmerge `send inside range over map`
	}
}
