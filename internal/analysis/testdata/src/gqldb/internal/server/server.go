// Package server is analyzer corpus: a miniature stand-in for
// gqldb/internal/server whose RegisterDoc mutates the engine's document
// map without a lock. The real method is startup-only by contract — it
// must run before the listener starts request goroutines that read the
// same map — so any call from inside a goroutine is a race.
package server

import "gqldb/internal/graph"

// Server mimics the HTTP frontend's registration surface.
type Server struct {
	docs map[string][]*graph.Graph
}

// RegisterDoc installs a document collection. Unlocked map write:
// coordinator-only, before serving starts.
func (s *Server) RegisterDoc(name string, coll []*graph.Graph) {
	if s.docs == nil {
		s.docs = map[string][]*graph.Graph{}
	}
	s.docs[name] = coll
}

// RacyRegister loads documents from a background goroutine while the
// server may already be serving: flagged.
func RacyRegister(s *Server, coll []*graph.Graph) {
	ch := make(chan struct{})
	go func() {
		s.RegisterDoc("DBLP", coll) // want:gosafe `non-thread-safe internal/server.Server.RegisterDoc`
		close(ch)
	}()
	<-ch
}

// StartupRegister registers on the coordinating goroutine before any
// request goroutine exists: allowed.
func StartupRegister(s *Server, coll []*graph.Graph) {
	s.RegisterDoc("DBLP", coll)
	s.RegisterDoc("BIG", coll)
}
