// Package server is analyzer corpus: a miniature stand-in for
// gqldb/internal/server after the storage-layer refactor. RegisterDoc now
// routes through the versioned document store, whose install path takes
// the store lock — so registration from any goroutine, including while
// queries are in flight, is supported and must NOT be flagged. (The
// pre-refactor unlocked map write used to be a gosafe entry; this file
// pins the relaxation.)
package server

import (
	"sync"

	"gqldb/internal/graph"
)

// Server mimics the HTTP frontend's registration surface.
type Server struct {
	mu   sync.Mutex
	docs map[string][]*graph.Graph
}

// RegisterDoc installs a document collection under the store lock: safe
// from any goroutine.
func (s *Server) RegisterDoc(name string, coll []*graph.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.docs == nil {
		s.docs = map[string][]*graph.Graph{}
	}
	s.docs[name] = coll
}

// BackgroundRegister loads documents from a background goroutine while the
// server is already serving: allowed since the versioned store.
func BackgroundRegister(s *Server, coll []*graph.Graph) {
	ch := make(chan struct{})
	go func() {
		s.RegisterDoc("DBLP", coll)
		close(ch)
	}()
	<-ch
}

// StartupRegister registers on the coordinating goroutine: allowed, as
// before.
func StartupRegister(s *Server, coll []*graph.Graph) {
	s.RegisterDoc("DBLP", coll)
	s.RegisterDoc("BIG", coll)
}
