// Package store is analyzer corpus for errwrap: error construction in
// exported functions of an internal package.
package store

import (
	"errors"
	"fmt"
)

// Open returns a bare errors.New: flagged.
func Open(path string) error {
	if path == "" {
		return errors.New("no path given") // want:errwrap `lacks the`
	}
	return nil
}

// Load returns an unprefixed, non-wrapping fmt.Errorf: flagged.
func Load(path string) error {
	if path == "bad" {
		return fmt.Errorf("cannot load %s", path) // want:errwrap `neither has the`
	}
	return nil
}

// LoadChecked prefixes and wraps correctly: allowed.
func LoadChecked(path string) error {
	if err := Load(path); err != nil {
		return fmt.Errorf("store: loading %s: %w", path, err)
	}
	if path == "empty" {
		return errors.New("store: empty path")
	}
	return nil
}

// helper is unexported but gets no exemption — deep call sites are exactly
// where unattributed errors are born: flagged.
func helper() error {
	return errors.New("transient") // want:errwrap `lacks the`
}

// wrapped is an unexported helper that follows the idiom: allowed.
func wrapped(path string) error {
	if err := helper(); err != nil {
		return fmt.Errorf("store: helper on %s: %w", path, err)
	}
	return nil
}

// Flush returns an error built elsewhere (dynamic message): allowed.
func Flush() error {
	msg := "store: flush failed"
	return errors.New(msg)
}
