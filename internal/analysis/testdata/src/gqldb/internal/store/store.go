// Package store is analyzer corpus for errwrap: error construction in
// exported functions of an internal package.
package store

import (
	"errors"
	"fmt"
)

// Open returns a bare errors.New: flagged.
func Open(path string) error {
	if path == "" {
		return errors.New("no path given") // want:errwrap `lacks the`
	}
	return nil
}

// Load returns an unprefixed, non-wrapping fmt.Errorf: flagged.
func Load(path string) error {
	if path == "bad" {
		return fmt.Errorf("cannot load %s", path) // want:errwrap `neither has the`
	}
	return nil
}

// LoadChecked prefixes and wraps correctly: allowed.
func LoadChecked(path string) error {
	if err := Load(path); err != nil {
		return fmt.Errorf("store: loading %s: %w", path, err)
	}
	if path == "empty" {
		return errors.New("store: empty path")
	}
	return nil
}

// helper is unexported but gets no exemption — deep call sites are exactly
// where unattributed errors are born: flagged.
func helper() error {
	return errors.New("transient") // want:errwrap `lacks the`
}

// wrapped is an unexported helper that follows the idiom: allowed.
func wrapped(path string) error {
	if err := helper(); err != nil {
		return fmt.Errorf("store: helper on %s: %w", path, err)
	}
	return nil
}

// Flush returns an error built elsewhere (dynamic message): allowed.
func Flush() error {
	msg := "store: flush failed"
	return errors.New(msg)
}

// Reload has the package prefix but flattens the callee error with %v, so
// errors.Is/As lose the cause: flagged.
func Reload(path string) error {
	if err := Load(path); err != nil {
		return fmt.Errorf("store: reloading %s: %v", path, err) // want:errwrap `without %w`
	}
	return nil
}

// Describe formats an error's text on purpose via .Error(): the argument
// is a string, not an error, so it is allowed.
func Describe(path string) error {
	if err := Load(path); err != nil {
		return fmt.Errorf("store: describing %s (cause: %s)", path, err.Error())
	}
	return nil
}

// DocBuilder mimics the real store's unsynchronized batch builder.
type DocBuilder struct {
	items []string
}

// Add appends without synchronization: single-goroutine by contract.
func (b *DocBuilder) Add(item string) { b.items = append(b.items, item) }

// Cache mimes the result cache's startup-only resizing surface.
type Cache struct {
	capacity int
}

// SetCapacity resizes without taking the lock: startup-only by contract.
func (c *Cache) SetCapacity(n int) { c.capacity = n }

// RacyBuild feeds one builder and resizes one cache from goroutines that
// share them: both flagged.
func RacyBuild(b *DocBuilder, c *Cache) {
	ch := make(chan struct{})
	go func() {
		b.Add("G1")      // want:gosafe `non-thread-safe internal/store.DocBuilder.Add`
		c.SetCapacity(8) // want:gosafe `non-thread-safe internal/store.Cache.SetCapacity`
		close(ch)
	}()
	<-ch
}

// CoordinatedBuild keeps builder feeding and cache sizing on the
// coordinating goroutine: allowed.
func CoordinatedBuild(b *DocBuilder, c *Cache) {
	b.Add("G1")
	b.Add("G2")
	c.SetCapacity(8)
}

// RemoteSelector mimics the cluster selector's startup-only tuning
// surface: the setters write plain fields read by every in-flight
// SelectShard call.
type RemoteSelector struct {
	retries      int
	allowPartial bool
}

// SetRetries writes an unguarded field: startup-only by contract.
func (r *RemoteSelector) SetRetries(n int) { r.retries = n }

// SetAllowPartial writes an unguarded field: startup-only by contract.
func (r *RemoteSelector) SetAllowPartial(v bool) { r.allowPartial = v }

// RacyTune reconfigures a selector already shared with querying
// goroutines: both flagged.
func RacyTune(r *RemoteSelector) {
	ch := make(chan struct{})
	go func() {
		r.SetRetries(0)         // want:gosafe `non-thread-safe internal/store.RemoteSelector.SetRetries`
		r.SetAllowPartial(true) // want:gosafe `non-thread-safe internal/store.RemoteSelector.SetAllowPartial`
		close(ch)
	}()
	<-ch
}

// StartupTune configures the selector before any query can hold it:
// allowed.
func StartupTune(r *RemoteSelector) {
	r.SetRetries(2)
	r.SetAllowPartial(false)
}

// WAL mimics the write-ahead log: Append and Reset advance the file
// position and record counter under the store writer lock, which the
// caller holds by contract.
type WAL struct {
	records int
}

// Append frames one batch: caller-locked by contract.
func (w *WAL) Append(seq uint64) { w.records++ }

// Reset truncates the log: caller-locked by contract.
func (w *WAL) Reset() { w.records = 0 }

// RacyWAL appends and truncates from a goroutine sharing the log without
// the writer lock: both flagged.
func RacyWAL(w *WAL) {
	ch := make(chan struct{})
	go func() {
		w.Append(1) // want:gosafe `non-thread-safe internal/store.WAL.Append`
		w.Reset()   // want:gosafe `non-thread-safe internal/store.WAL.Reset`
		close(ch)
	}()
	<-ch
}

// CoordinatedWAL keeps the log on the coordinating (locked) goroutine:
// allowed.
func CoordinatedWAL(w *WAL) {
	w.Append(1)
	w.Append(2)
	w.Reset()
}
