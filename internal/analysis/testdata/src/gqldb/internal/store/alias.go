// alias.go: regression corpus for the errwrap aliased-import hole. The
// pre-typed analyzer matched `fmt.Errorf` / `errors.New` by selector
// spelling, so renaming the import let unattributed errors through. Object
// resolution sees through the alias.
package store

import (
	e "errors"
	f "fmt"
)

// OpenAliased builds a bare error through an aliased errors import:
// flagged (the old analyzer missed this).
func OpenAliased(path string) error {
	if path == "" {
		return e.New("no path given") // want:errwrap `lacks the`
	}
	return nil
}

// LoadAliased formats through an aliased fmt import without prefix or %w:
// flagged (the old analyzer missed this).
func LoadAliased(path string) error {
	if path == "bad" {
		return f.Errorf("cannot load %s", path) // want:errwrap `neither has the`
	}
	return nil
}

// FlattenAliased has the prefix but flattens a callee error with %v
// through the alias: flagged.
func FlattenAliased(path string) error {
	if err := LoadAliased(path); err != nil {
		return f.Errorf("store: load %s: %v", path, err) // want:errwrap `without %w`
	}
	return nil
}

// WrapAliased follows the idiom through the alias: allowed.
func WrapAliased(path string) error {
	if err := LoadAliased(path); err != nil {
		return f.Errorf("store: load %s: %w", path, err)
	}
	if path == "empty" {
		return e.New("store: empty path")
	}
	return nil
}
