// detmerge.go: corpus for both detmerge rules — map-order leaks in merge
// paths, and wall-clock / global-rand nondeterminism in result paths.
package store

import (
	"math/rand"
	"sort"
	"time"

	"gqldb/internal/obs"
)

func localWork() {}

// ---- rule 1: map iteration order ----

// MergeNames collects map keys and sorts after the loop — the FromMap
// idiom: allowed.
func MergeNames(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// LeakOrder appends map values without ever sorting: flagged.
func LeakOrder(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want:detmerge `inherits randomized map order`
	}
	return out
}

// JoinUnsorted accumulates a string in map order: flagged.
func JoinUnsorted(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want:detmerge `string accumulation`
	}
	return s
}

// StreamUnsorted sends in map order: flagged.
func StreamUnsorted(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want:detmerge `send inside range over map`
	}
}

// Reindex writes map→map — order-insensitive: allowed.
func Reindex(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// ---- rule 2: wall-clock containment ----

// ElapsedLeak returns a clock-derived value as a result: flagged.
func ElapsedLeak() time.Duration {
	start := time.Now()
	localWork()
	return time.Since(start) // want:detmerge `escapes via return`
}

// ElapsedObserved measures, feeds obs and gates on the threshold — every
// sanctioned use at once: allowed.
func ElapsedObserved(limit time.Duration) bool {
	start := time.Now()
	localWork()
	wall := time.Since(start)
	obs.ObserveSeconds(wall)
	if wall > limit {
		return true
	}
	return false
}

// StampResult stores the clock into a result struct: flagged.
type record struct {
	Items int
	Wall  time.Duration
}

func StampResult(items int) record {
	start := time.Now()
	localWork()
	return record{Items: items, Wall: time.Since(start)} // want:detmerge `non-observability composite`
}

// ---- rule 2b: global math/rand ----

// PickGlobal draws from the process-wide source: flagged.
func PickGlobal(n int) int {
	return rand.Intn(n) // want:detmerge `global math/rand.Intn`
}

// PickSeeded builds a deterministic seeded generator — reach's sampling
// idiom: allowed (methods on *rand.Rand are not package-level draws).
func PickSeeded(n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
