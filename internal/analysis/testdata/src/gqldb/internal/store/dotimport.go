// dotimport.go: regression corpus for the errwrap dot-import hole. A
// dot-imported fmt makes Errorf a bare identifier — invisible to
// selector matching, resolved exactly by go/types.
package store

import (
	. "fmt"
)

// LoadDotted formats through a dot-imported fmt without prefix or %w:
// flagged (the old analyzer missed this).
func LoadDotted(path string) error {
	if path == "bad" {
		return Errorf("cannot load %s", path) // want:errwrap `neither has the`
	}
	return nil
}

// WrapDotted follows the idiom through the dot import: allowed.
func WrapDotted(path string) error {
	if err := LoadDotted(path); err != nil {
		return Errorf("store: load %s: %w", path, err)
	}
	return nil
}
