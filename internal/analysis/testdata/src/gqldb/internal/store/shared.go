// shared.go: stand-ins for the store's aliased read surfaces — the
// accessors in aliasguard's registry. The analyzer skips internal/store
// itself (the owner manages its own representation); corpus callers live
// in the exec corpus package.
package store

// Doc mimics a registered document: the canonical collection is handed
// out by reference and must be treated as read-only.
type Doc struct {
	Name string
	coll []int
}

// Collection returns the canonical collection by reference.
func (d *Doc) Collection() []int { return d.coll }

// Shards returns the shared shard partition.
func (d *Doc) Shards() []int { return d.coll }

// Snapshot mimics the immutable store view.
type Snapshot struct {
	docs map[string]*Doc
}

// Doc returns the shared registered document.
func (sn *Snapshot) Doc(name string) (*Doc, bool) {
	d, ok := sn.docs[name]
	return d, ok
}

// DocStore mimics the versioned store.
type DocStore struct {
	snap *Snapshot
}

// Snapshot shares the live view.
func (s *DocStore) Snapshot() *Snapshot { return s.snap }

// Get mimics the result cache's aliased return: the cached value itself,
// never a copy.
func (c *Cache) Get(key string) (any, bool) {
	_ = key
	return nil, false
}

// ShardResult mimics the coordinator's per-shard answer: Group hands the
// merged member list out by reference.
type ShardResult struct {
	groups [][]int
}

// Group returns one member's bindings by reference.
func (r *ShardResult) Group(li int) []int { return r.groups[li] }
