// Package exec is analyzer corpus for aliasguard: the engine layer is
// where store accessors get called, and where the read-only contract on
// their results is easiest to violate.
package exec

import (
	"gqldb/internal/store"
)

// mutateCached writes into a cached result pulled from the result cache.
// Taint follows the type assertion: flagged.
func mutateCached(c *store.Cache) {
	v, ok := c.Get("q1")
	if !ok {
		return
	}
	m := v.(map[string][]int)
	m["res"] = nil // want:aliasguard `element write`
}

// dropCached deletes from a cached map — same corruption, builtin form:
// flagged.
func dropCached(c *store.Cache) {
	v, ok := c.Get("q1")
	if !ok {
		return
	}
	m := v.(map[string][]int)
	delete(m, "res") // want:aliasguard `delete`
}

// renameDoc writes a field of a shared snapshot document: flagged.
func renameDoc(sn *store.Snapshot, name string) {
	d, ok := sn.Doc(name)
	if !ok {
		return
	}
	d.Name = "copy" // want:aliasguard `field write`
}

// scribbleCollection stores through the canonical collection alias:
// flagged.
func scribbleCollection(d *store.Doc) {
	coll := d.Collection()
	if len(coll) == 0 {
		return
	}
	coll[0] = 99 // want:aliasguard `element write`
}

// growCollection appends directly to the accessor result — append can
// scribble on the shared backing array when capacity allows: flagged.
func growCollection(d *store.Doc) []int {
	return append(d.Collection(), 1) // want:aliasguard `append`
}

// cloneThenMutate copies the collection out first — the sanctioned
// clone-before-mutate shape: allowed.
func cloneThenMutate(d *store.Doc) []int {
	src := d.Collection()
	out := make([]int, len(src))
	copy(out, src)
	out = append(out, 1)
	return out
}

// readSnapshot only reads through the accessor chain: allowed.
func readSnapshot(s *store.DocStore, name string) int {
	d, ok := s.Snapshot().Doc(name)
	if !ok {
		return 0
	}
	return len(d.Collection()) + len(d.Shards())
}

// scribbleGroup writes through the shared group slice a shard result hands
// out by reference — corrupting the merged answer for every other holder:
// flagged.
func scribbleGroup(r *store.ShardResult) {
	g := r.Group(0)
	if len(g) == 0 {
		return
	}
	g[0] = -1 // want:aliasguard `element write`
}

// renderGroup copies the group before reordering — the sanctioned shape:
// allowed.
func renderGroup(r *store.ShardResult) []int {
	src := r.Group(0)
	out := make([]int, len(src))
	copy(out, src)
	if len(out) > 1 {
		out[0], out[1] = out[1], out[0]
	}
	return out
}

// usedAll keeps the corpus cases referenced so the package typechecks
// without unused-symbol noise under vet.
var _ = []any{mutateCached, dropCached, renameDoc, scribbleCollection,
	growCollection, cloneThenMutate, readSnapshot, scribbleGroup, renderGroup}
