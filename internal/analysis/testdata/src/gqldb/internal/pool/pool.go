// Package pool is analyzer corpus for ctxpoll: unbounded-shape loops and
// recursion-carrying loops, with polls at dominating and non-dominating
// positions.
package pool

import "context"

func work(i int) int { return i * 2 }

// Spin can iterate forever and never observes cancellation: flagged.
func Spin(n int) int {
	total := 0
	for { // want:ctxpoll `never polls`
		total++
		if total > n {
			break
		}
	}
	return total
}

// GuardedPoll polls only on the verbose branch, so an iteration on the
// other path never observes cancellation — the poll must dominate: flagged.
func GuardedPoll(ctx context.Context, verbose bool, n int) int {
	total := 0
	for { // want:ctxpoll `never polls`
		if verbose {
			if ctx.Err() != nil {
				return total
			}
		}
		total++
		if total > n {
			return total
		}
	}
}

// LateGuardedSelect hides its poll behind a nil guard — the exact shape
// the real pool worker had: on the nil path every iteration skips the
// poll: flagged.
func LateGuardedSelect(done <-chan struct{}, items []int) int {
	total := 0
	i := 0
	for { // want:ctxpoll `never polls`
		if done != nil {
			select {
			case <-done:
				return total
			default:
			}
		}
		if i >= len(items) {
			return total
		}
		total += work(items[i])
		i++
	}
}

// PollEveryIteration checks ctx.Err() at the top of every iteration:
// allowed.
func PollEveryIteration(ctx context.Context, n int) error {
	i := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		i++
		if i >= n {
			return nil
		}
	}
}

// SelectPoll selects on the done channel unconditionally — a nil channel
// never fires, so no guard is needed: allowed.
func SelectPoll(done <-chan struct{}, items []int) int {
	total := 0
	i := 0
	for {
		select {
		case <-done:
			return total
		default:
		}
		if i >= len(items) {
			return total
		}
		total += work(items[i])
		i++
	}
}

// WhileDelegated is while-style but hands the context to its callee every
// iteration — the callee owns the polling obligation: allowed.
func WhileDelegated(ctx context.Context, fn func(context.Context, int) error, n int) error {
	for n > 0 {
		if err := fn(ctx, n); err != nil {
			return err
		}
		n--
	}
	return nil
}

// Bounded3Clause is a plain counted loop with no recursion: exempt even
// without a poll (the near-miss the shape rule must not flag).
func Bounded3Clause(items []int) int {
	total := 0
	for i := 0; i < len(items); i++ {
		total += work(items[i])
	}
	return total
}

// visitAll recurses under a range loop with no poll anywhere: the loop is
// bounded per call but the recursion makes iteration count data-deep:
// flagged.
func visitAll(children map[int][]int, node int, out *[]int) {
	*out = append(*out, node)
	for _, c := range children[node] { // want:ctxpoll `never polls`
		visitAll(children, c, out)
	}
}

// visitCtx threads the context into the recursive callee: allowed.
func visitCtx(ctx context.Context, children map[int][]int, node int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, c := range children[node] {
		if err := visitCtx(ctx, children, c); err != nil {
			return err
		}
	}
	return nil
}
