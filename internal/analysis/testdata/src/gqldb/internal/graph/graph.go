// Package graph is a miniature stand-in for gqldb/internal/graph: just
// enough surface (Value, Tuple, Graph and their methods) for the analyzer
// corpus to type-check. The import path seen by the analyzers ends in
// internal/graph, so the type-identity checks behave exactly as on the
// real package.
package graph

import "errors"

// Construction errors recorded by the non-panicking constructors.
var (
	errEmptyName = errors.New("graph: empty node name")
	errRange     = errors.New("graph: endpoint out of range")
)

// Value mimics the kind-tagged attribute value.
type Value struct {
	kind int
	i    int64
	f    float64
	s    string
}

// Equal is the sanctioned equality.
func (v Value) Equal(w Value) bool { return v.kind == w.kind && v.i == w.i && v.f == w.f && v.s == w.s }

// Compare is the sanctioned ordering.
func (v Value) Compare(w Value) (int, error) { return 0, nil }

// Tuple mimics the attribute tuple.
type Tuple struct {
	names []string
	vals  []Value
}

// Equal is the sanctioned tuple equality.
func (t *Tuple) Equal(u *Tuple) bool { return t == u }

// Graph mimics the attributed multigraph.
type Graph struct {
	n   int
	err error
}

// AddNode records construction errors instead of panicking — the real
// package's post-Builder contract, so the allowlist stays empty.
func (g *Graph) AddNode(name string) int {
	if name == "" && g.err == nil {
		g.err = errEmptyName
	}
	g.n++
	return g.n - 1
}

// AddEdge records out-of-range endpoints instead of panicking.
func (g *Graph) AddEdge(from, to int) {
	if (from >= g.n || to >= g.n) && g.err == nil {
		g.err = errRange
	}
}

// Err surfaces the first construction error.
func (g *Graph) Err() error { return g.err }

// Freeze is NOT on the allowlist, so its panic must be flagged.
func (g *Graph) Freeze() {
	panic("graph: not implemented") // want:panicfree `panic in hot-path function Freeze`
}

// Builder mimics the error-accumulating batch loader; its mutators are not
// thread-safe (gosafe corpus).
type Builder struct {
	g    Graph
	errs []error
}

// AddNode delegates to the graph and accumulates its error.
func (b *Builder) AddNode(name string) int {
	id := b.g.AddNode(name)
	if err := b.g.Err(); err != nil {
		b.errs = append(b.errs, err)
	}
	return id
}

// AddEdge delegates to the graph.
func (b *Builder) AddEdge(from, to int) {
	b.g.AddEdge(from, to)
}

// SetTuple records graph attributes.
func (b *Builder) SetTuple(t *Tuple) {
	_ = t
}
