// Package graph is a miniature stand-in for gqldb/internal/graph: just
// enough surface (Value, Tuple, Graph and their methods) for the analyzer
// corpus to type-check. The import path seen by the analyzers ends in
// internal/graph, so the type-identity checks behave exactly as on the
// real package.
package graph

// Value mimics the kind-tagged attribute value.
type Value struct {
	kind int
	i    int64
	f    float64
	s    string
}

// Equal is the sanctioned equality.
func (v Value) Equal(w Value) bool { return v.kind == w.kind && v.i == w.i && v.f == w.f && v.s == w.s }

// Compare is the sanctioned ordering.
func (v Value) Compare(w Value) (int, error) { return 0, nil }

// Tuple mimics the attribute tuple.
type Tuple struct {
	names []string
	vals  []Value
}

// Equal is the sanctioned tuple equality.
func (t *Tuple) Equal(u *Tuple) bool { return t == u }

// Graph mimics the attributed multigraph.
type Graph struct{ n int }

// AddNode panics on duplicate names — allowlisted constructor-time check.
func (g *Graph) AddNode(name string) int {
	if name == "" {
		panic("graph: empty node name") // allowed: panicAllowlist entry
	}
	g.n++
	return g.n - 1
}

// AddEdge panics on out-of-range endpoints — allowlisted.
func (g *Graph) AddEdge(from, to int) {
	if from >= g.n || to >= g.n {
		panic("graph: endpoint out of range") // allowed: panicAllowlist entry
	}
}

// Freeze is NOT on the allowlist, so its panic must be flagged.
func (g *Graph) Freeze() {
	panic("graph: not implemented") // want:panicfree `panic in hot-path function Freeze`
}
