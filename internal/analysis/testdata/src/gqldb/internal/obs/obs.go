// Package obs is a miniature stand-in for gqldb/internal/obs with the
// split concurrency contract the gosafe analyzer encodes: Add and
// StartChild are locked and worker-safe, End and SetAttr are
// coordinator-only.
package obs

import (
	"sync"
	"time"
)

// Attr is one span annotation.
type Attr struct {
	Key, Val string
}

// Span mimics the trace span.
type Span struct {
	Name  string
	Start time.Time

	mu     sync.Mutex
	wall   time.Duration
	ended  bool
	attrs  []Attr
	counts map[string]int64
}

// Add is locked: safe from pool workers.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counts == nil {
		s.counts = map[string]int64{}
	}
	s.counts[key] += n
	s.mu.Unlock()
}

// StartChild is locked: safe from concurrently running operators.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	_ = c
	s.mu.Unlock()
	return c
}

// End writes the wall clock unlocked — coordinator-only.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.wall = time.Since(s.Start)
}

// SetAttr appends unlocked — coordinator-only.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// ObserveSeconds mimics the metrics registry's histogram feed — the
// sanctioned destination for wall-clock values (detmerge's sink).
func ObserveSeconds(d time.Duration) { _ = d }
