package analysis

import (
	"go/ast"
	"go/token"
)

// ValueCmp forbids ==, != and reflect.DeepEqual on graph.Value and
// graph.Tuple operands. Value carries every payload field (int, float,
// string) regardless of kind, so == is kind-blind and wrong for the
// cross-kind numeric equality the data model defines (Int(1) must equal
// Float(1)); Tuple comparison must be order-insensitive over attributes.
// Both types provide Equal/Compare for this. The defining package
// (internal/graph) is exempt: it implements those methods.
var ValueCmp = &Analyzer{
	Name: "valuecmp",
	Doc:  "forbid ==/!=/reflect.DeepEqual on graph.Value and graph.Tuple; use their Compare/Equal methods",
	Run:  runValueCmp,
}

// cmpSensitiveTypes are the internal/graph types whose identity semantics
// live in methods, not in Go's shallow equality.
var cmpSensitiveTypes = []string{"Value", "Tuple"}

func runValueCmp(pass *Pass) {
	if pathHasSuffix(pass.Path, "internal/graph") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if isNilIdent(e.X) || isNilIdent(e.Y) {
					return true // p == nil on *Tuple is a presence check, not a comparison
				}
				if name := cmpSensitiveOperand(pass, e.X, e.Y); name != "" {
					pass.Reportf(e.OpPos, "%s on graph.%s; use Equal (or Compare) — Go equality is kind-blind for these types", e.Op, name)
				}
			case *ast.CallExpr:
				sel, ok := e.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "DeepEqual" || len(e.Args) != 2 {
					return true
				}
				if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "reflect" {
					return true
				}
				if name := cmpSensitiveOperand(pass, e.Args[0], e.Args[1]); name != "" {
					pass.Reportf(e.Pos(), "reflect.DeepEqual on graph.%s; use Equal (or Compare)", name)
				}
			}
			return true
		})
	}
}

// cmpSensitiveOperand returns the graph type name ("Value" or "Tuple") if
// either operand has one of the comparison-sensitive types, or "".
func cmpSensitiveOperand(pass *Pass, x, y ast.Expr) string {
	for _, e := range []ast.Expr{x, y} {
		tv, ok := pass.Info.Types[e]
		if !ok {
			continue
		}
		for _, name := range cmpSensitiveTypes {
			if namedFromGraph(tv.Type, name) {
				return name
			}
		}
	}
	return ""
}

// isNilIdent reports whether the expression is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
