// Package analysis is gqldb's project-specific static-analysis suite: a
// small, stdlib-only (go/parser + go/ast + go/types) analyzer framework and
// five analyzers that mechanize the review rules the hot paths of the
// Algorithm 4.1 implementation depend on:
//
//   - panicfree: no panic/log.Fatal in hot-path packages (explicit allowlist
//     for constructor-time panics in graph)
//   - valuecmp: no ==/!=/reflect.DeepEqual on graph.Value or graph.Tuple;
//     use Compare/Equal
//   - gosafe: goroutine bodies must not call known non-thread-safe methods
//     or write captured variables without index partitioning
//   - errwrap: exported internal functions returning error must package-
//     prefix their messages or wrap with %w
//   - recbound: recursive functions in match/motif/reach must carry a
//     depth/budget parameter or check a cancellation/limit flag
//
// The driver lives in cmd/gqlvet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// ignoreLines collects `//gqlvet:ignore name[,name...]` comments keyed by
// "file:line" → analyzer-name set.
func ignoreLines(p *Pass) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
				rest, ok := strings.CutPrefix(text, "gqlvet:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := pos.Filename + ":" + strconv.Itoa(pos.Line)
				names := out[key]
				if names == nil {
					names = map[string]bool{}
					out[key] = names
				}
				for _, n := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					names[n] = true
				}
			}
		}
	}
	return out
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one type-checked package handed to each analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. gqldb/internal/match
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos for the running analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full gqlvet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		PanicFree,
		ValueCmp,
		GoSafe,
		ErrWrap,
		RecBound,
		CtxPoll,
		DetMerge,
		AliasGuard,
	}
}

// Run applies the analyzers to every pass and returns all diagnostics in
// deterministic (file, line, column, analyzer) order. A diagnostic whose
// line carries a `//gqlvet:ignore <name>[,<name>...]` (or
// `//gqlvet:ignore all`) comment is suppressed.
func Run(passes []*Pass, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range passes {
		ignores := ignoreLines(p)
		for _, a := range analyzers {
			p.analyzer = a.Name
			p.diags = nil
			a.Run(p)
			for _, d := range p.diags {
				key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
				if ignores[key][a.Name] || ignores[key]["all"] {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// pathHasSuffix reports whether the import path is exactly suffix or ends
// with "/"+suffix (so "internal/match" matches "gqldb/internal/match" but
// not "gqldb/internal/matchmaker").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasAnySuffix reports whether the import path matches any suffix.
func pathHasAnySuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// namedFromGraph reports whether t (after unwrapping one layer of pointer
// or slice) is the named type internal/graph.<name>.
func namedFromGraph(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		t = u.Elem()
	case *types.Slice:
		t = u.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && pathHasSuffix(obj.Pkg().Path(), "internal/graph")
}

// trimToInternal strips a module prefix down to the trailing
// "internal/..." segment so allowlist keys are module-name independent.
func trimToInternal(path string) string {
	if i := strings.Index(path, "internal/"); i >= 0 {
		return path[i:]
	}
	return path
}

// funcKey names a declaration the way the allowlists spell it:
// "internal/graph.TupleOf" or "internal/graph.(*Graph).AddNode".
func funcKey(pkgPath string, decl *ast.FuncDecl) string {
	pkg := trimToInternal(pkgPath)
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return pkg + "." + decl.Name.Name
	}
	recv := decl.Recv.List[0].Type
	star := ""
	if se, ok := recv.(*ast.StarExpr); ok {
		star = "*"
		recv = se.X
	}
	// Strip generic type parameters if present.
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ix.X
	}
	name := "?"
	if id, ok := recv.(*ast.Ident); ok {
		name = id.Name
	}
	if star != "" {
		return pkg + ".(*" + name + ")." + decl.Name.Name
	}
	return pkg + "." + name + "." + decl.Name.Name
}
