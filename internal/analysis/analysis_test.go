package analysis_test

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gqldb/internal/analysis"
)

// expectation is one want clause parsed from the corpus: the analyzer that
// must fire on that line and a substring of its message.
type expectation struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
}

var wantRE = regexp.MustCompile("want:([a-z]+) `([^`]*)`")

// parseExpectations scans every corpus file for want clauses.
func parseExpectations(t *testing.T, root string) []expectation {
	t.Helper()
	var out []expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				out = append(out, expectation{
					file:     filepath.Base(path),
					line:     i + 1,
					analyzer: m[1],
					substr:   m[2],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking corpus: %v", err)
	}
	return out
}

// TestAnalyzersOnCorpus type-checks the testdata module and demands exact
// agreement between the analyzers' diagnostics and the corpus want
// clauses: every want must fire (flag cases) and nothing unannotated may
// fire (allow cases).
func TestAnalyzersOnCorpus(t *testing.T) {
	root := filepath.Join("testdata", "src", "gqldb")
	fset := token.NewFileSet()
	passes, err := analysis.LoadOpts(fset, root, "gqldb", analysis.LoadOptions{IncludeTests: true})
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	diags := analysis.Run(passes, analysis.All())

	wants := parseExpectations(t, root)
	if len(wants) == 0 {
		t.Fatal("no want clauses found in corpus")
	}

	// Every analyzer in the suite must have at least one flag case.
	covered := map[string]bool{}
	for _, w := range wants {
		covered[w.analyzer] = true
	}
	for _, a := range analysis.All() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no flag case in the corpus", a.Name)
		}
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			if filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line &&
				d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic: %s:%d [%s] containing %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestSelfClean runs the full suite over this repository itself — tests
// included — the acceptance bar for cmd/gqlvet -tests: the shipped tree
// must be finding-free.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	fset := token.NewFileSet()
	passes, err := analysis.LoadModuleOpts(fset, filepath.Join("..", ".."), analysis.LoadOptions{IncludeTests: true})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := analysis.Run(passes, analysis.All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Logf("%d findings; the tree must stay gqlvet-clean", len(diags))
	}
}

// TestDiagnosticString pins the driver's output format.
func TestDiagnosticString(t *testing.T) {
	d := analysis.Diagnostic{
		Pos:      token.Position{Filename: "a/b.go", Line: 12, Column: 3},
		Analyzer: "panicfree",
		Message:  "panic in hot-path function F",
	}
	got := d.String()
	want := "a/b.go:12:3: [panicfree] panic in hot-path function F"
	if got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
	if fmt.Sprint(d) != want {
		t.Errorf("fmt.Sprint(d) = %q, want %q", fmt.Sprint(d), want)
	}
}
