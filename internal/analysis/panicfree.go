package analysis

import (
	"go/ast"
	"go/types"
)

// isBuiltin reports whether the identifier resolves to the universe-scope
// builtin of that name (rather than a local redefinition).
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true // unresolved; only builtins escape Uses in checked code
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// hotPathPkgs are the packages on the Algorithm 4.1 evaluation path where a
// panic aborts a whole selection (or a whole worker pool) instead of
// surfacing as a per-query error.
var hotPathPkgs = []string{
	"internal/match",
	"internal/algebra",
	"internal/exec",
	"internal/pattern",
	"internal/expr",
	"internal/graph",
	"internal/sqlbase",
	"internal/ra",
}

// panicAllowlist names functions permitted to panic. It is empty: the
// graph constructors that used to be allowlisted (AddNode/AddEdge/
// RenameNode/TupleOf) now record construction errors surfaced via
// Graph.Err and the batch Builder, so bulk ingest of untrusted graph files
// can never abort the process. Add an entry here — with a justification —
// only for a provably call-site-bug-only invariant check.
var panicAllowlist = map[string]string{}

// PanicFree forbids panic and log.Fatal* in hot-path packages.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "forbid panic/log.Fatal in hot-path packages (match, algebra, exec, pattern, expr, graph) outside the constructor allowlist",
	Run:  runPanicFree,
}

func runPanicFree(pass *Pass) {
	if !pathHasAnySuffix(pass.Path, hotPathPkgs) {
		return
	}
	for _, file := range pass.Files {
		// Test helpers panic to fail loudly; the no-panic contract binds
		// the production query path only.
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := panicAllowlist[funcKey(pass.Path, fd)]; ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fn := call.Fun.(type) {
				case *ast.Ident:
					if fn.Name == "panic" && isBuiltin(pass, fn) {
						pass.Reportf(call.Pos(), "panic in hot-path function %s; return an error instead (or allowlist in internal/analysis/panicfree.go)", fd.Name.Name)
					}
				case *ast.SelectorExpr:
					if x, ok := fn.X.(*ast.Ident); ok && x.Name == "log" {
						switch fn.Sel.Name {
						case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
							pass.Reportf(call.Pos(), "log.%s in hot-path function %s; return an error instead", fn.Sel.Name, fd.Name.Name)
						}
					}
				}
				return true
			})
		}
	}
}
