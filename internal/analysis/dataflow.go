package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// dataflow.go: the intra-function dataflow layer the condition-sensitive
// analyzers (recbound, ctxpoll, detmerge, aliasguard) build on. It turns
// one function body into basic blocks connected by control edges, computes
// dominators over them, and runs reaching definitions at statement
// granularity. The model is deliberately small:
//
//   - FuncLit bodies are excluded — a literal is its own funcUnit with its
//     own CFG, because its body runs on its own control paths (often on
//     another goroutine).
//   - panic and os.Exit fall through like ordinary calls. That
//     over-approximates the path set, which only makes dominance harder to
//     establish — the conservative direction for every current client.
//   - goto adds an edge to the synthetic exit block and marks the CFG
//     imprecise; none of the analyzers weaken their verdicts on it today,
//     and the tree has no gotos.

// CondKind says which control position a condition expression occupies.
type CondKind int

const (
	CondIf CondKind = iota
	CondFor
	CondRange
	CondSwitchTag
	CondCase
	CondSelectComm
)

// Cond is one condition evaluated at the end of a block: the guarding
// expression of a branch, the tag or case list of a switch, the operand of
// a range, or the communication of a select clause (Expr nil, Comm set).
type Cond struct {
	Kind CondKind
	Expr ast.Expr // nil for CondSelectComm
	Comm ast.Stmt // the select communication statement, CondSelectComm only
}

// Block is one basic block: simple statements in execution order, then the
// conditions that choose among successors.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Conds []Cond
	Succs []*Block
	Preds []*Block
}

// Loop is the CFG shape of one for/range statement. Head evaluates the
// condition (or range operand) once per iteration; Latch is the unique
// block every continuing iteration passes through on its way back to Head
// (the post statement lives there); Exit is where break and a false
// condition land. A statement that must run every iteration is exactly a
// statement whose block dominates Latch.
type Loop struct {
	Stmt  ast.Stmt
	Head  *Block
	Body  *Block
	Latch *Block
	Exit  *Block
}

// CFG is the control-flow graph of one function unit.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Imprecise is set when the body contains a construct the builder
	// models conservatively (goto).
	Imprecise bool

	loops     map[ast.Stmt]*Loop
	nodeBlock map[ast.Node]*Block

	dom [][]bool // dom[i][j]: block j dominates block i; lazily built
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{
		loops:     map[ast.Stmt]*Loop{},
		nodeBlock: map[ast.Node]*Block{},
	}
	b := &cfgBuilder{cfg: c}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, c.Exit)
	}
	c.index()
	return c
}

// LoopOf returns the loop shape of a for/range statement, or nil.
func (c *CFG) LoopOf(s ast.Stmt) *Loop { return c.loops[s] }

// BlockOf returns the basic block that evaluates n (a simple statement, a
// condition expression, or anything nested inside one — FuncLit interiors
// excluded), or nil for nodes outside this unit.
func (c *CFG) BlockOf(n ast.Node) *Block { return c.nodeBlock[n] }

// Dominates reports whether every path from the entry to b passes through
// a. Unreachable blocks are treated as dominated by everything (dead code
// never defeats an invariant).
func (c *CFG) Dominates(a, b *Block) bool {
	if a == nil || b == nil {
		return false
	}
	if c.dom == nil {
		c.computeDominators()
	}
	return c.dom[b.Index][a.Index]
}

// index assigns block indices and fills the node→block map.
func (c *CFG) index() {
	for i, blk := range c.Blocks {
		blk.Index = i
		for _, s := range blk.Stmts {
			mapNodes(c.nodeBlock, s, blk)
		}
		for _, cond := range blk.Conds {
			if cond.Expr != nil {
				mapNodes(c.nodeBlock, cond.Expr, blk)
			}
		}
	}
}

// mapNodes records every node under root (FuncLit interiors excluded) as
// belonging to blk. Control statements are recorded shallowly by the
// builder, so root here is always a simple statement or an expression.
func mapNodes(m map[ast.Node]*Block, root ast.Node, blk *Block) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			m[lit] = blk // the literal value is made here; its body is not
			return false
		}
		m[n] = blk
		return true
	})
}

// computeDominators runs the classic iterative dataflow:
// dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(preds(b)).
func (c *CFG) computeDominators() {
	n := len(c.Blocks)
	reachable := make([]bool, n)
	var mark func(b *Block)
	mark = func(b *Block) {
		if reachable[b.Index] {
			return
		}
		reachable[b.Index] = true
		for _, s := range b.Succs {
			mark(s)
		}
	}
	mark(c.Entry)

	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		if !reachable[i] {
			// Unreachable: dominated by everything by convention.
			for j := range dom[i] {
				dom[i][j] = true
			}
			continue
		}
		if i == c.Entry.Index {
			dom[i][i] = true
			continue
		}
		for j := range dom[i] {
			dom[i][j] = true // start from ⊤ and shrink
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range c.Blocks {
			i := b.Index
			if !reachable[i] || i == c.Entry.Index {
				continue
			}
			next := make([]bool, n)
			first := true
			for _, p := range b.Preds {
				if !reachable[p.Index] {
					continue
				}
				if first {
					copy(next, dom[p.Index])
					first = false
					continue
				}
				for j := range next {
					next[j] = next[j] && dom[p.Index][j]
				}
			}
			if first {
				// Reachable only via unreachable preds cannot happen (mark
				// walks succ edges), but keep the entry-like default.
				next = make([]bool, n)
			}
			next[i] = true
			for j := range next {
				if next[j] != dom[i][j] {
					dom[i] = next
					changed = true
					break
				}
			}
		}
	}
	c.dom = dom
}

// cfgBuilder incrementally grows a CFG. cur is the block under
// construction; nil after a terminator (return/branch), in which case the
// next statement opens a fresh unreachable block so node mapping stays
// total.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// break/continue targets, innermost last.
	breaks    []*Block
	continues []*Block
	// labeled loop targets by label name.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	// pending label for the next loop/switch statement.
	pendingLabel string
	// fallthrough target inside a switch (next case body).
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// current returns the block under construction, opening an unreachable one
// after a terminator.
func (b *cfgBuilder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.current().Stmts = append(b.current().Stmts, s.Init)
		}
		cond := b.current()
		cond.Conds = append(cond.Conds, Cond{Kind: CondIf, Expr: s.Cond})
		b.cfg.nodeBlock[s] = cond
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		afterThen := b.cur
		var afterElse *Block
		hasElse := s.Else != nil
		if hasElse {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			afterElse = b.cur
		}
		join := b.newBlock()
		if afterThen != nil {
			b.edge(afterThen, join)
		}
		if hasElse {
			if afterElse != nil {
				b.edge(afterElse, join)
			}
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.current().Stmts = append(b.current().Stmts, s.Init)
		}
		head := b.newBlock()
		b.edge(b.current(), head)
		if s.Cond != nil {
			head.Conds = append(head.Conds, Cond{Kind: CondFor, Expr: s.Cond})
		}
		body := b.newBlock()
		latch := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit)
		}
		if s.Post != nil {
			latch.Stmts = append(latch.Stmts, s.Post)
		}
		b.edge(latch, head)
		b.cfg.nodeBlock[s] = head
		b.cfg.loops[s] = &Loop{Stmt: s, Head: head, Body: body, Latch: latch, Exit: exit}
		b.pushLoop(label, exit, latch)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, latch)
		}
		b.popLoop(label)
		b.cur = exit

	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.newBlock()
		b.edge(b.current(), head)
		head.Conds = append(head.Conds, Cond{Kind: CondRange, Expr: s.X})
		body := b.newBlock()
		latch := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit)
		b.edge(latch, head)
		b.cfg.nodeBlock[s] = head
		if s.Key != nil {
			mapNodes(b.cfg.nodeBlock, s.Key, head)
		}
		if s.Value != nil {
			mapNodes(b.cfg.nodeBlock, s.Value, head)
		}
		b.cfg.loops[s] = &Loop{Stmt: s, Head: head, Body: body, Latch: latch, Exit: exit}
		b.pushLoop(label, exit, latch)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, latch)
		}
		b.popLoop(label)
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.current().Stmts = append(b.current().Stmts, s.Init)
		}
		head := b.current()
		if s.Tag != nil {
			head.Conds = append(head.Conds, Cond{Kind: CondSwitchTag, Expr: s.Tag})
		}
		b.cfg.nodeBlock[s] = head
		b.switchBody(head, s.Body.List, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Conds = append(blk.Conds, Cond{Kind: CondCase, Expr: e})
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.current().Stmts = append(b.current().Stmts, s.Init)
		}
		head := b.current()
		head.Stmts = append(head.Stmts, s.Assign)
		b.cfg.nodeBlock[s] = head
		b.switchBody(head, s.Body.List, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Conds = append(blk.Conds, Cond{Kind: CondCase, Expr: e})
			}
		})

	case *ast.SelectStmt:
		head := b.current()
		b.cfg.nodeBlock[s] = head
		join := b.newBlock()
		b.breaks = append(b.breaks, join)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			blk.Conds = append(blk.Conds, Cond{Kind: CondSelectComm, Comm: cc.Comm})
			if cc.Comm != nil {
				blk.Stmts = append(blk.Stmts, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		}
		if len(s.Body.List) == 0 {
			b.edge(head, join)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = join

	case *ast.BranchStmt:
		cur := b.current()
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t := b.labelBreak[s.Label.Name]; t != nil {
					b.edge(cur, t)
				}
			} else if len(b.breaks) > 0 {
				b.edge(cur, b.breaks[len(b.breaks)-1])
			}
		case token.CONTINUE:
			if s.Label != nil {
				if t := b.labelContinue[s.Label.Name]; t != nil {
					b.edge(cur, t)
				}
			} else if len(b.continues) > 0 {
				b.edge(cur, b.continues[len(b.continues)-1])
			}
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(cur, b.fallthroughTo)
			}
		case token.GOTO:
			b.cfg.Imprecise = true
			b.edge(cur, b.cfg.Exit)
		}
		b.cfg.nodeBlock[s] = cur
		b.cur = nil

	case *ast.ReturnStmt:
		cur := b.current()
		cur.Stmts = append(cur.Stmts, s)
		b.edge(cur, b.cfg.Exit)
		b.cur = nil

	default:
		// Simple statement: assignments, declarations, expressions, send,
		// inc/dec, defer, go, empty.
		b.current().Stmts = append(b.current().Stmts, s)
	}
}

// switchBody builds the per-case blocks of a switch or type switch. Every
// case block is a successor of head (evaluation order among cases is not
// modeled; head dominating all cases is what the clients need). addConds
// attaches the clause's case expressions to its block.
func (b *cfgBuilder) switchBody(head *Block, clauses []ast.Stmt, addConds func(*ast.CaseClause, *Block)) {
	join := b.newBlock()
	b.breaks = append(b.breaks, join)
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		blk := b.newBlock()
		b.edge(head, blk)
		addConds(cc, blk)
		if len(cc.List) == 0 {
			hasDefault = true
		}
		caseBlocks[i] = blk
	}
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		if i+1 < len(caseBlocks) {
			b.fallthroughTo = caseBlocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = caseBlocks[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.fallthroughTo = nil
	if !hasDefault {
		b.edge(head, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		if b.labelBreak == nil {
			b.labelBreak = map[string]*Block{}
			b.labelContinue = map[string]*Block{}
		}
		b.labelBreak[label] = brk
		b.labelContinue[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelContinue, label)
	}
}

// ---- reaching definitions ----

// Def is one definition of a local variable: an assignment, a short
// declaration, a range binding, an inc/dec, or (Rhs nil, Entry true) the
// variable entering the function as a parameter, receiver or named result.
type Def struct {
	Var *types.Var
	// Rhs is the defining expression: the paired right-hand side for 1:1
	// assignments, the whole multi-value expression for tuple assignments
	// (Index says which result), the range operand for range bindings, nil
	// for zero-value declarations and entry definitions.
	Rhs   ast.Expr
	Index int
	// SelfRef marks definitions that read the previous value (x++, x += e):
	// the old definitions still flow in.
	SelfRef bool
	Entry   bool
	Range   bool
	Stmt    ast.Stmt // defining statement; nil for entry and range defs
}

// RD is the reaching-definitions solution for one function unit, at
// statement granularity: DefsReaching answers which definitions of a
// variable may flow into a given use.
type RD struct {
	cfg  *CFG
	info *types.Info

	defs    []*Def
	byVar   map[*types.Var][]int // def indices per variable
	byStmt  map[ast.Stmt][]int   // def indices generated by a statement
	headGen map[*Block][]int     // defs generated in a block's Conds (range bindings)
	in      map[*Block]map[int]bool
}

// NewRD computes reaching definitions over the unit's CFG. params holds
// the declared parameters/receiver/results (from the enclosing FuncDecl or
// FuncLit type), which become entry definitions.
func NewRD(cfg *CFG, info *types.Info, params []*types.Var) *RD {
	r := &RD{
		cfg:     cfg,
		info:    info,
		byVar:   map[*types.Var][]int{},
		byStmt:  map[ast.Stmt][]int{},
		headGen: map[*Block][]int{},
		in:      map[*Block]map[int]bool{},
	}
	for _, p := range params {
		r.addDef(&Def{Var: p, Entry: true})
	}
	r.collect()
	r.solve()
	return r
}

func (r *RD) addDef(d *Def) int {
	idx := len(r.defs)
	r.defs = append(r.defs, d)
	r.byVar[d.Var] = append(r.byVar[d.Var], idx)
	if d.Stmt != nil {
		r.byStmt[d.Stmt] = append(r.byStmt[d.Stmt], idx)
	}
	return idx
}

// localVar resolves an identifier in definition position to its object.
func (r *RD) localVar(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if v, ok := r.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := r.info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

// collect walks every block's statements and conditions recording defs.
func (r *RD) collect() {
	for _, blk := range r.cfg.Blocks {
		for _, s := range blk.Stmts {
			r.collectStmt(s)
		}
		for _, c := range blk.Conds {
			if c.Kind != CondRange {
				continue
			}
			// Range bindings regenerate in the head each iteration.
			loop := r.rangeLoopOf(blk)
			if loop == nil {
				continue
			}
			rs := loop.Stmt.(*ast.RangeStmt)
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				if e == nil {
					continue
				}
				if id, ok := e.(*ast.Ident); ok {
					if v := r.localVar(id); v != nil {
						idx := r.addDef(&Def{Var: v, Rhs: rs.X, Range: true})
						r.headGen[blk] = append(r.headGen[blk], idx)
					}
				}
			}
		}
	}
}

// rangeLoopOf finds the loop whose head is blk.
func (r *RD) rangeLoopOf(blk *Block) *Loop {
	for _, l := range r.cfg.loops {
		if l.Head == blk {
			return l
		}
	}
	return nil
}

func (r *RD) collectStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		compound := s.Tok != token.ASSIGN && s.Tok != token.DEFINE
		for i, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := r.localVar(id)
			if v == nil {
				continue
			}
			d := &Def{Var: v, Stmt: s, SelfRef: compound}
			if len(s.Rhs) == len(s.Lhs) {
				d.Rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				d.Rhs = s.Rhs[0]
				d.Index = i
			}
			r.addDef(d)
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			if v := r.localVar(id); v != nil {
				r.addDef(&Def{Var: v, Stmt: s, SelfRef: true})
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := r.localVar(name)
				if v == nil {
					continue
				}
				d := &Def{Var: v, Stmt: s}
				if len(vs.Values) == len(vs.Names) {
					d.Rhs = vs.Values[i]
				} else if len(vs.Values) == 1 {
					d.Rhs = vs.Values[0]
					d.Index = i
				}
				r.addDef(d)
			}
		}
	}
}

// gen/kill per block, then the standard worklist iteration.
func (r *RD) solve() {
	n := len(r.cfg.Blocks)
	gen := make([]map[int]bool, n)
	out := make([]map[int]bool, n)
	for _, blk := range r.cfg.Blocks {
		g := map[int]bool{}
		for _, s := range blk.Stmts {
			for _, idx := range r.byStmt[s] {
				d := r.defs[idx]
				if !d.SelfRef {
					for _, other := range r.byVar[d.Var] {
						delete(g, other)
					}
				}
				g[idx] = true
			}
		}
		for _, idx := range r.headGen[blk] {
			g[idx] = true
		}
		gen[blk.Index] = g
		out[blk.Index] = map[int]bool{}
		r.in[blk] = map[int]bool{}
	}
	// Entry defs flow out of the entry block.
	entryOut := out[r.cfg.Entry.Index]
	for idx, d := range r.defs {
		if d.Entry {
			entryOut[idx] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range r.cfg.Blocks {
			in := r.in[blk]
			for _, p := range blk.Preds {
				for idx := range out[p.Index] {
					if !in[idx] {
						in[idx] = true
						changed = true
					}
				}
			}
			o := out[blk.Index]
			// out = gen ∪ (in − kill): a def survives unless the block
			// unconditionally redefines its variable afterwards. Statement
			// order inside the block is handled by transfer(); at block
			// granularity we approximate kill by "block contains a
			// non-self-ref def of the same var" only when that def is in gen.
			for idx := range in {
				killed := false
				d := r.defs[idx]
				if !gen[blk.Index][idx] {
					for _, g := range r.byVar[d.Var] {
						if gen[blk.Index][g] && !r.defs[g].SelfRef {
							killed = true
							break
						}
					}
				}
				if !killed && !o[idx] {
					o[idx] = true
					changed = true
				}
			}
			for idx := range gen[blk.Index] {
				if !o[idx] {
					o[idx] = true
					changed = true
				}
			}
		}
	}
}

// DefsReaching returns the definitions of the used identifier's variable
// that may reach that use. The block's statements are replayed up to the
// statement containing the use, so intra-block ordering is respected.
func (r *RD) DefsReaching(use *ast.Ident) []*Def {
	v, ok := r.info.Uses[use].(*types.Var)
	if !ok {
		if v, ok = r.info.Defs[use].(*types.Var); !ok || v == nil {
			return nil
		}
	}
	blk := r.cfg.BlockOf(use)
	if blk == nil {
		return nil
	}
	live := map[int]bool{}
	for idx := range r.in[blk] {
		if r.defs[idx].Var == v {
			live[idx] = true
		}
	}
	for _, idx := range r.headGen[blk] {
		if r.defs[idx].Var == v {
			live[idx] = true
		}
	}
	for _, s := range blk.Stmts {
		if containsNode(s, use) {
			break
		}
		for _, idx := range r.byStmt[s] {
			d := r.defs[idx]
			if d.Var != v {
				continue
			}
			if !d.SelfRef {
				for old := range live {
					delete(live, old)
				}
			}
			live[idx] = true
		}
	}
	var out []*Def
	for idx := range live {
		out = append(out, r.defs[idx])
	}
	return out
}

// containsNode reports whether target occurs under root (FuncLit interiors
// excluded, mirroring the block node map).
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n == target {
			found = true
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	return found
}

// paramsOf extracts the parameter/receiver/result variables of a unit for
// NewRD's entry definitions.
func paramsOf(pass *Pass, u funcUnit) []*types.Var {
	var out []*types.Var
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					out = append(out, v)
				}
			}
		}
	}
	if u.Decl != nil {
		add(u.Decl.Recv)
		add(u.Decl.Type.Params)
		add(u.Decl.Type.Results)
	} else if u.Lit != nil {
		add(u.Lit.Type.Params)
		add(u.Lit.Type.Results)
	}
	return out
}

// ---- taint closure ----

// taintSpec configures TaintedVars: seed marks root expressions that
// introduce taint (a time.Now() call, a Cache.Get call); carrier extends
// propagation to extra expression shapes beyond the built-in ones.
type taintSpec struct {
	seed    func(e ast.Expr) bool
	carrier func(e ast.Expr, tainted func(ast.Expr) bool) bool
}

// taintedVars computes, flow-insensitively, the local variables of one
// function unit whose value may derive from a seed expression. The closure
// follows single- and multi-assignments, short declarations, compound
// assignments and range bindings; an expression carries taint when it is a
// seed, an identifier of a tainted variable, or built from a carrying
// expression through parens, type assertions, conversions, unary/binary
// arithmetic, indexing, slicing or field selection.
func taintedVars(pass *Pass, u funcUnit, spec taintSpec) map[*types.Var]bool {
	tainted := map[*types.Var]bool{}
	var carries func(e ast.Expr) bool
	carries = func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		if spec.seed(e) {
			return true
		}
		if spec.carrier != nil && spec.carrier(e, carries) {
			return true
		}
		switch e := e.(type) {
		case *ast.Ident:
			v, ok := pass.Info.Uses[e].(*types.Var)
			return ok && tainted[v]
		case *ast.ParenExpr:
			return carries(e.X)
		case *ast.TypeAssertExpr:
			return carries(e.X)
		case *ast.UnaryExpr:
			return carries(e.X)
		case *ast.StarExpr:
			return carries(e.X)
		case *ast.BinaryExpr:
			return carries(e.X) || carries(e.Y)
		case *ast.IndexExpr:
			return carries(e.X)
		case *ast.SliceExpr:
			return carries(e.X)
		case *ast.SelectorExpr:
			return carries(e.X)
		case *ast.CallExpr:
			if isTypeConversion(pass, e) && len(e.Args) == 1 {
				return carries(e.Args[0])
			}
			return false
		}
		return false
	}
	mark := func(id *ast.Ident) bool {
		var v *types.Var
		if d, ok := pass.Info.Defs[id].(*types.Var); ok {
			v = d
		} else if uv, ok := pass.Info.Uses[id].(*types.Var); ok {
			v = uv
		}
		if v == nil || tainted[v] {
			return false
		}
		tainted[v] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(u.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if carries(rhs) {
						if mark(id) {
							changed = true
						}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, spec2 := range gd.Specs {
						vs, ok := spec2.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for i, name := range vs.Names {
							var rhs ast.Expr
							if len(vs.Values) == len(vs.Names) {
								rhs = vs.Values[i]
							} else if len(vs.Values) == 1 {
								rhs = vs.Values[0]
							}
							if carries(rhs) {
								if mark(name) {
									changed = true
								}
							}
						}
					}
				}
			case *ast.RangeStmt:
				if carries(n.X) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok && e != nil {
							if mark(id) {
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return tainted
}
