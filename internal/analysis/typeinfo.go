package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// typeinfo.go: object-resolution helpers shared by the analyzers. Every
// symbol question is answered through go/types objects — never through
// identifier spelling — so aliased imports (import f "fmt"), dot imports
// and local shadowing resolve exactly as the compiler sees them. This is
// what closed the ROADMAP hole where `import f "fmt"; f.Errorf(...)`
// escaped errwrap's selector-name matching.

// calleeOf resolves the function or method object a call invokes: a plain
// identifier (local function, or a dot-imported one), or a selector
// (package-qualified function or a method). Indirect calls through
// function-typed values resolve to nil.
func calleeOf(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (receiver-less; methods never match).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// pkgLevelFuncOf returns the path of the package whose level-0 function fn
// is ("" for methods, locals and nil).
func pkgLevelFuncOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	return fn.Pkg().Path()
}

// methodKeyOf names a method object the way the registries spell it:
// "internal/store.Cache.Get" (pointer receivers unwrapped, module prefix
// trimmed). "" for non-methods.
func methodKeyOf(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return trimToInternal(obj.Pkg().Path()) + "." + obj.Name() + "." + fn.Name()
}

// namedTypeKey returns "internal/store.Cache"-style registry key for a
// named type (pointers unwrapped), or "".
func namedTypeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return trimToInternal(obj.Pkg().Path()) + "." + obj.Name()
}

// typeFromPkg reports whether t (pointers unwrapped) is a named type whose
// defining package path ends with the given internal suffix.
func typeFromPkg(t types.Type, internalSuffix string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), internalSuffix)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isTypeConversion reports whether the call expression is a conversion
// (the Fun position names a type, not a function).
func isTypeConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// errorInterface is the universe error interface, resolved once.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t implements the universe error
// interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorInterface)
}

// isTestFile reports whether the node is positioned in a _test.go file.
func isTestFile(pass *Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// funcUnit is one analyzable body: a declared function or a function
// literal. Literals are separate units because their bodies execute on
// their own control paths (often on another goroutine), so CFGs and
// dataflow never cross a FuncLit boundary.
type funcUnit struct {
	Name string         // declared name, or "<enclosing>.func" for literals
	Decl *ast.FuncDecl  // nil for literals
	Lit  *ast.FuncLit   // nil for declarations
	Body *ast.BlockStmt // never nil
}

// funcUnits yields every function unit in the file: each FuncDecl with a
// body, plus every FuncLit anywhere in the file (including inside other
// literals), each exactly once.
func funcUnits(file *ast.File) []funcUnit {
	var units []funcUnit
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, declUnits(fd)...)
	}
	return units
}

// declUnits yields one declaration's units: the FuncDecl itself plus every
// FuncLit nested in its body.
func declUnits(fd *ast.FuncDecl) []funcUnit {
	units := []funcUnit{{Name: fd.Name.Name, Decl: fd, Body: fd.Body}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, funcUnit{Name: fd.Name.Name + ".func", Lit: lit, Body: lit.Body})
		}
		return true
	})
	return units
}
