package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the repo's error idiom: errors constructed inside any
// internal function — exported or not — must identify their origin, either
// with the "<pkg>: ..." message prefix every existing message uses or by
// wrapping an underlying error with %w. A bare errors.New("bad input")
// surfacing from a deep call site is undebuggable at the gqlshell prompt;
// unexported helpers are where those deep sites live, so they get no
// exemption.
//
// It additionally demands %w whenever a callee error reaches fmt.Errorf as
// a format argument: formatting an error with %v or %s flattens it to text,
// so errors.Is/As (which the server's status mapping and the engine's
// ParseError unwrapping rely on) stop seeing the cause. Any argument whose
// static type implements the universe error interface must be wrapped. The
// %w rule holds everywhere gqlvet looks — cmd/ and _test.go included —
// because a flattened cause breaks errors.Is no matter who calls it; the
// message-prefix rule stays scoped to non-test internal code, where the
// prefix convention lives.
//
// Both constructors are resolved through go/types objects, so aliased
// imports (import f "fmt"), dot imports and vendored shadows are seen
// exactly as the compiler sees them — the selector-name matching this
// replaced let `f.Errorf(...)` through unexamined.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "internal functions must package-prefix error messages or wrap with %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	prefix := pass.Pkg.Name() + ":"
	internal := strings.Contains(pass.Path, "internal/")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsError(pass, fd) {
				continue
			}
			// The prefix convention governs non-test internal code; test
			// helpers and cmd/ binaries only owe the structural %w rule.
			wantPrefix := internal && !isTestFile(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeOf(pass, call)
				if fn == nil {
					return true
				}
				msg, isLit := stringLit(call.Args[0])
				switch {
				case isPkgFunc(fn, "errors", "New"):
					if !isLit {
						return true // dynamic message: trust the author
					}
					if wantPrefix && !strings.HasPrefix(msg, prefix) {
						pass.Reportf(call.Pos(), "errors.New message %q in %s lacks the %q prefix; use fmt.Errorf(\"%s ...\") or wrap with %%w", msg, fd.Name.Name, prefix, prefix)
					}
				case isPkgFunc(fn, "fmt", "Errorf"):
					if !isLit {
						return true // dynamic format: %w may be present
					}
					wraps := strings.Contains(msg, "%w")
					if wantPrefix && !strings.HasPrefix(msg, prefix) && !wraps {
						pass.Reportf(call.Pos(), "fmt.Errorf message %q in %s neither has the %q prefix nor wraps with %%w", msg, fd.Name.Name, prefix)
					}
					if !wraps {
						for _, arg := range call.Args[1:] {
							if isErrorTyped(pass, arg) {
								pass.Reportf(call.Pos(), "fmt.Errorf in %s formats an error argument without %%w; wrap it so errors.Is/As keep seeing the cause", fd.Name.Name)
								break
							}
						}
					}
				}
				return true
			})
		}
	}
}

// isErrorTyped reports whether e's static type implements the universe
// error interface (the type of a callee error in scope at the call site).
func isErrorTyped(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return implementsError(tv.Type)
}

// returnsError reports whether any declared result of fd has type error.
func returnsError(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if tv, ok := pass.Info.Types[field.Type]; ok {
			if named, ok := tv.Type.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
