package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// recboundPkgs are the packages whose recursion runs over user-supplied
// graphs and grammars: unbounded depth there is a stack overflow (or an
// unbounded query) triggered by data, not by code.
var recboundPkgs = []string{
	"internal/match",
	"internal/motif",
	"internal/reach",
}

// boundWords are identifier fragments accepted as evidence that a
// recursive function threads a depth/budget or checks a cancellation or
// visited-set bound. Matching is case-insensitive on substrings, so
// maxDepth, RefineLevel-style limits, s.done and visited[] all qualify.
var boundWords = []string{
	"depth", "budget", "limit", "fuel", "remaining",
	"cancel", "done", "visited", "stop", "ctx", "deadline", "step",
}

// RecBound requires every (directly or mutually) recursive function in
// match/motif/reach to show a visible termination bound beyond structural
// recursion: a depth/budget parameter, a cancellation flag, or a visited
// set.
var RecBound = &Analyzer{
	Name: "recbound",
	Doc:  "recursive functions in match/motif/reach must thread a depth/budget parameter or check a cancellation/limit",
	Run:  runRecBound,
}

func runRecBound(pass *Pass) {
	if !pathHasAnySuffix(pass.Path, recboundPkgs) {
		return
	}
	// Collect package-level function declarations keyed by their object.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	// Call-graph edges between functions of this package.
	calls := map[*types.Func][]*types.Func{}
	for caller, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := pass.Info.Uses[id].(*types.Func); ok {
				if _, local := decls[callee]; local {
					calls[caller] = append(calls[caller], callee)
				}
			}
			return true
		})
	}
	for fn, fd := range decls {
		if !reaches(calls, fn, fn, map[*types.Func]bool{}) {
			continue
		}
		if hasBoundEvidence(fd) {
			continue
		}
		pass.Reportf(fd.Pos(), "recursive function %s has no visible depth/budget/cancellation bound; thread a depth or budget parameter, or check a limit/cancellation flag", fn.Name())
	}
}

// reaches reports whether target is reachable from fn over call edges.
func reaches(calls map[*types.Func][]*types.Func, fn, target *types.Func, seen map[*types.Func]bool) bool {
	for _, callee := range calls[fn] {
		if callee == target {
			return true
		}
		if seen[callee] {
			continue
		}
		seen[callee] = true
		if reaches(calls, callee, target, seen) {
			return true
		}
	}
	return false
}

// hasBoundEvidence scans parameter names and every identifier mentioned in
// the body for a bound word.
func hasBoundEvidence(fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if isBoundWord(name.Name) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && isBoundWord(id.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBoundWord reports whether the identifier contains a bound fragment.
func isBoundWord(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range boundWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}
