package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// recboundPkgs are the packages whose recursion runs over user-supplied
// graphs and grammars: unbounded depth there is a stack overflow (or an
// unbounded query) triggered by data, not by code.
var recboundPkgs = []string{
	"internal/match",
	"internal/motif",
	"internal/reach",
}

// boundWords are identifier fragments recognised as depth/budget carriers
// or cancellation/visited-set state. Matching is case-insensitive on
// substrings, so maxDepth, RefineLevel-style limits, s.done and visited[]
// all qualify — but only in the dataflow positions checked below, not
// anywhere in the function.
var boundWords = []string{
	"depth", "budget", "limit", "fuel", "remaining",
	"cancel", "done", "visited", "stop", "ctx", "deadline", "step",
}

// RecBound requires every (directly or mutually) recursive function in
// match/motif/reach to show a visible termination bound beyond structural
// recursion. Evidence is dataflow, not spelling: a bound-word value must
// either be *modified* in an argument of a call into the recursion
// (depth-1 threaded down), or *checked* in a condition position (if/for
// condition, switch tag or case, select communication, range operand).
// Merely naming a parameter "depth" and passing it through unchanged is
// not a bound.
var RecBound = &Analyzer{
	Name: "recbound",
	Doc:  "recursive functions in match/motif/reach must decrement a depth/budget argument or check a limit/cancellation/visited bound in a condition",
	Run:  runRecBound,
}

func runRecBound(pass *Pass) {
	if !pathHasAnySuffix(pass.Path, recboundPkgs) {
		return
	}
	// Collect package-level function declarations keyed by their object.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	local := map[*types.Func]bool{}
	for fn := range decls {
		local[fn] = true
	}
	// Call-graph edges between functions of this package.
	calls := map[*types.Func][]*types.Func{}
	for caller, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := pass.Info.Uses[id].(*types.Func); ok {
				if _, isLocal := decls[callee]; isLocal {
					calls[caller] = append(calls[caller], callee)
				}
			}
			return true
		})
	}
	for fn, fd := range decls {
		if !reaches(calls, fn, fn, map[*types.Func]bool{}) {
			continue
		}
		if hasBoundEvidence(pass, fd, local) {
			continue
		}
		pass.Reportf(fd.Pos(), "recursive function %s has no visible depth/budget/cancellation bound; decrement a depth or budget argument when recursing, or check a limit/cancellation/visited bound in a condition", fn.Name())
	}
}

// reaches reports whether target is reachable from fn over call edges.
func reaches(calls map[*types.Func][]*types.Func, fn, target *types.Func, seen map[*types.Func]bool) bool {
	for _, callee := range calls[fn] {
		if callee == target {
			return true
		}
		if seen[callee] {
			continue
		}
		seen[callee] = true
		if reaches(calls, callee, target, seen) {
			return true
		}
	}
	return false
}

// hasBoundEvidence reports whether the function shows a dataflow bound:
//
//   - Rule A: a call to a package-local function passes an argument that
//     mentions a bound word AND is a compound expression — the bound is
//     being modified on the way down (depth-1, budget/2, min(d, limit)).
//     A bare identifier or field passed through unchanged is NOT evidence;
//     that is exactly the lucky-name shape the lexical scan used to accept.
//
//   - Rule B: a bound word appears inside a condition position — an if or
//     for condition, a switch tag or case expression, a select
//     communication, or a range operand. These are where a budget check,
//     cancellation flag or visited set actually gates the recursion.
func hasBoundEvidence(pass *Pass, fd *ast.FuncDecl, local map[*types.Func]bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			found = exprMentionsBound(n.Cond)
		case *ast.ForStmt:
			found = n.Cond != nil && exprMentionsBound(n.Cond)
		case *ast.RangeStmt:
			found = exprMentionsBound(n.X)
		case *ast.SwitchStmt:
			found = n.Tag != nil && exprMentionsBound(n.Tag)
		case *ast.CaseClause:
			for _, e := range n.List {
				if exprMentionsBound(e) {
					found = true
				}
			}
		case *ast.CommClause:
			if n.Comm != nil {
				ast.Inspect(n.Comm, func(m ast.Node) bool {
					if e, ok := m.(ast.Expr); ok && exprMentionsBound(e) {
						found = true
					}
					return !found
				})
			}
		case *ast.CallExpr:
			callee := calleeFunc(pass, n)
			if callee == nil || !local[callee] {
				return true
			}
			for _, arg := range n.Args {
				if isPassThrough(arg) {
					continue
				}
				if exprMentionsBound(arg) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// calleeFunc resolves the called function object for direct and method
// calls; nil for indirect calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPassThrough reports whether the argument is an unmodified name — a
// bare identifier or selector chain — carrying no evidence that a bound is
// consumed.
func isPassThrough(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPassThrough(e.X)
	case *ast.ParenExpr:
		return isPassThrough(e.X)
	}
	return false
}

// exprMentionsBound reports whether any identifier inside e contains a
// bound word.
func exprMentionsBound(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && isBoundWord(id.Name) {
			found = true
		}
		return !found
	})
	return found
}

// isBoundWord reports whether the identifier contains a bound fragment.
func isBoundWord(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range boundWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}
