package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// recboundPkgs are the packages whose recursion runs over user-supplied
// graphs and grammars: unbounded depth there is a stack overflow (or an
// unbounded query) triggered by data, not by code.
var recboundPkgs = []string{
	"internal/match",
	"internal/motif",
	"internal/reach",
}

// boundWords are identifier fragments recognised as depth/budget carriers
// or cancellation/visited-set state. Matching is case-insensitive on
// substrings, so maxDepth, RefineLevel-style limits, s.done and visited[]
// all qualify — but only in the dataflow positions checked below, not
// anywhere in the function.
var boundWords = []string{
	"depth", "budget", "limit", "fuel", "remaining",
	"cancel", "done", "visited", "stop", "ctx", "deadline", "step",
}

// RecBound requires every (directly or mutually) recursive function in
// match/motif/reach to show a termination bound on every recursion path.
// Evidence is per recursive call site:
//
//   - Rule A: the call itself modifies a bound-word value on the way down
//     (depth-1, budget/2, min(d, limit)) — a compound argument mentioning a
//     bound word. A bare identifier passed through unchanged is not
//     evidence.
//
//   - Rule B: a condition mentioning a bound word *dominates* the call —
//     every path from the function entry to the recursion passes through
//     the check. A bound check on a sibling branch, or after the call,
//     gates nothing; the lexical predecessor of this rule accepted any
//     bound word anywhere in any condition, which is the ROADMAP hole this
//     closes.
var RecBound = &Analyzer{
	Name: "recbound",
	Doc:  "recursive functions in match/motif/reach must decrement a depth/budget argument or check a limit/cancellation/visited bound on a path dominating each recursive call",
	Run:  runRecBound,
}

func runRecBound(pass *Pass) {
	if !pathHasAnySuffix(pass.Path, recboundPkgs) {
		return
	}
	// Collect package-level function declarations keyed by their object.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	// Call-graph edges between functions of this package.
	calls := map[*types.Func][]*types.Func{}
	for caller, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := pass.Info.Uses[id].(*types.Func); ok {
				if _, isLocal := decls[callee]; isLocal {
					calls[caller] = append(calls[caller], callee)
				}
			}
			return true
		})
	}
	for fn, fd := range decls {
		if !reaches(calls, fn, fn, map[*types.Func]bool{}) {
			continue
		}
		if hasUnboundedSite(pass, fd, fn, decls, calls) {
			pass.Reportf(fd.Pos(), "recursive function %s has a recursion path with no visible depth/budget/cancellation bound; decrement a depth or budget argument when recursing, or check a limit/cancellation/visited bound on a path dominating the recursive call", fn.Name())
		}
	}
}

// reaches reports whether target is reachable from fn over call edges.
func reaches(calls map[*types.Func][]*types.Func, fn, target *types.Func, seen map[*types.Func]bool) bool {
	for _, callee := range calls[fn] {
		if callee == target {
			return true
		}
		if seen[callee] {
			continue
		}
		seen[callee] = true
		if reaches(calls, callee, target, seen) {
			return true
		}
	}
	return false
}

// boundCond is one condition position mentioning a bound word: the block
// it terminates plus the checked node (expression, or select comm stmt).
type boundCond struct {
	blk  *Block
	node ast.Node
}

// hasUnboundedSite reports whether any recursive call site in fd (its body
// or any nested function literal) lacks both evidence rules.
func hasUnboundedSite(pass *Pass, fd *ast.FuncDecl, fn *types.Func, decls map[*types.Func]*ast.FuncDecl, calls map[*types.Func][]*types.Func) bool {
	for _, u := range declUnits(fd) {
		cfg := NewCFG(u.Body)
		var bounds []boundCond
		for _, blk := range cfg.Blocks {
			for _, c := range blk.Conds {
				var node ast.Node
				if c.Expr != nil {
					node = c.Expr
				} else if c.Comm != nil {
					node = c.Comm
				}
				if node != nil && nodeMentionsBound(node) {
					bounds = append(bounds, boundCond{blk: blk, node: node})
				}
			}
		}
		unbounded := false
		ast.Inspect(u.Body, func(n ast.Node) bool {
			if unbounded {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(u.Lit) {
				return false // separate unit
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass, call)
			if callee == nil {
				return true
			}
			if _, isLocal := decls[callee]; !isLocal {
				return true
			}
			// A recursive site: the callee can reach fn again.
			if callee != fn && !reaches(calls, callee, fn, map[*types.Func]bool{}) {
				return true
			}
			if !siteHasEvidence(cfg, bounds, call) {
				unbounded = true
			}
			return true
		})
		if unbounded {
			return true
		}
	}
	return false
}

// siteHasEvidence applies Rule A (bound modified at the call) and Rule B
// (bound check dominating the call) to one recursive call site.
func siteHasEvidence(cfg *CFG, bounds []boundCond, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if !isPassThrough(arg) && exprMentionsBound(arg) {
			return true // Rule A
		}
	}
	blk := cfg.BlockOf(call)
	if blk == nil {
		// Not mapped (call inside a nested literal handled by its own
		// unit); no verdict from this unit.
		return true
	}
	for _, bc := range bounds {
		if bc.blk == blk {
			// Conditions terminate their block, so a same-block check runs
			// after the call — unless the call sits inside the condition
			// itself (`if depth > 0 && rec(d)`), where short-circuiting
			// makes the check the gate.
			if containsNode(bc.node, call) {
				return true
			}
			continue
		}
		if cfg.Dominates(bc.blk, blk) {
			return true // Rule B
		}
	}
	return false
}

// isPassThrough reports whether the argument is an unmodified name — a
// bare identifier or selector chain — carrying no evidence that a bound is
// consumed.
func isPassThrough(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPassThrough(e.X)
	case *ast.ParenExpr:
		return isPassThrough(e.X)
	}
	return false
}

// exprMentionsBound reports whether any identifier inside e contains a
// bound word.
func exprMentionsBound(e ast.Expr) bool {
	if e == nil {
		return false
	}
	return nodeMentionsBound(e)
}

// nodeMentionsBound reports whether any identifier under n contains a
// bound word.
func nodeMentionsBound(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && isBoundWord(id.Name) {
			found = true
		}
		return !found
	})
	return found
}

// isBoundWord reports whether the identifier contains a bound fragment.
func isBoundWord(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range boundWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}
