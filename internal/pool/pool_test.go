package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gqldb/internal/obs"
)

func TestRunCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7, 64} {
		for _, n := range []int{0, 1, 15, 16, 17, 100, 1000} {
			hits := make([]int32, n)
			err := Run(context.Background(), n, workers, func(i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	// Errors at several indices: the serial-first (lowest) one must win
	// regardless of worker count and scheduling.
	bad := map[int]bool{37: true, 200: true, 611: true}
	want := 37
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 20; trial++ {
			err := Run(context.Background(), 1000, workers, func(i int) error {
				if bad[i] {
					return fmt.Errorf("item %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != fmt.Sprintf("item %d failed", want) {
				t.Fatalf("workers=%d: err = %v, want item %d", workers, err, want)
			}
		}
	}
}

func TestRunCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := Run(ctx, 10000, workers, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if int(ran.Load()) == 10000 {
			t.Fatalf("workers=%d: cancellation did not stop the pool", workers)
		}
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := Run(ctx, 100, 4, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunErrorBeatsCancellation(t *testing.T) {
	// A recorded fn error takes precedence over a concurrent cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sentinel := errors.New("boom")
	err := Run(ctx, 100, 4, func(i int) error {
		if i == 3 {
			cancel()
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunNilContext(t *testing.T) {
	var ran atomic.Int32
	if err := Run(nil, 50, 4, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50", ran.Load())
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(5, 3); w != 3 {
		t.Fatalf("Workers(5,3) = %d", w)
	}
	if w := Workers(2, 100); w != 2 {
		t.Fatalf("Workers(2,100) = %d", w)
	}
	if w := Workers(0, 0); w != 1 {
		t.Fatalf("Workers(0,0) = %d", w)
	}
	if w := Workers(-1, 8); w < 1 || w > 8 {
		t.Fatalf("Workers(-1,8) = %d", w)
	}
}

func TestRunWorkerUtilizationCounters(t *testing.T) {
	// Serial path: everything lands on worker ordinal 0.
	items0 := obs.PoolWorkerItems.Value(0)
	busy0 := obs.PoolWorkerBusy.Value(0)
	if err := Run(context.Background(), 10, 1, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := obs.PoolWorkerItems.Value(0) - items0; got != 10 {
		t.Fatalf("serial items delta = %d, want 10", got)
	}
	if got := obs.PoolWorkerBusy.Value(0) - busy0; got < int64(10*time.Millisecond) {
		t.Fatalf("serial busy delta = %v, want >= 10ms", time.Duration(got))
	}

	// Parallel path: the deltas across all worker ordinals must sum to the
	// item count, and every busy delta is nonnegative.
	const workers, n = 4, 64
	var before [workers]int64
	for w := 0; w < workers; w++ {
		before[w] = obs.PoolWorkerItems.Value(w)
	}
	if err := Run(context.Background(), n, workers, func(i int) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var total int64
	for w := 0; w < workers; w++ {
		total += obs.PoolWorkerItems.Value(w) - before[w]
	}
	if total != n {
		t.Fatalf("parallel items delta sum = %d, want %d", total, n)
	}
}
