// Package pool provides the bounded worker pool shared by the parallel bulk
// operators (parallel selection, product, join, composition and the exec
// pipeline fan-out). The pool runs index-addressed work — fn(i) for i in
// [0,n) — so callers get deterministic output by writing results into
// index-partitioned slots; the pool itself never reorders anything.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gqldb/internal/obs"
)

// chunk is the number of consecutive indices a worker claims per atomic
// cursor advance. Per-item work in the algebra is often microseconds (one
// small-graph match, one template instantiation), so claiming batches keeps
// the cursor off the contention path while still load-balancing: a stuck
// worker strands at most chunk-1 items.
const chunk = 16

// Workers resolves a requested worker count against an item count: zero or
// negative means GOMAXPROCS, and the count is capped at n (never below 1).
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes fn(i) for every i in [0, n) on up to workers goroutines
// (Workers resolves the count) and blocks until all claimed work finished.
//
// Determinism contract: indices are claimed in ascending chunks, every
// claimed chunk runs to its own first error, and the error returned is the
// one with the smallest index among all recorded — exactly the error a
// serial loop would return first. Cancellation is polled between chunk
// claims (and per item in the serial workers<=1 path); when the context is
// cancelled and no fn error was recorded, Run returns ctx.Err().
//
// fn must be safe for concurrent invocation with distinct indices and must
// confine its writes to per-index state (result slots), never to shared
// accumulators.
func Run(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// One registry update per bulk-operator execution — never per item.
	obs.PoolRuns.Inc()
	obs.PoolTasks.Add(int64(n))
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// The serial path is busy end to end, so utilization is measured
		// around the whole loop — one clock read per Run, never per item.
		executed := 0
		start := time.Now()
		defer func() {
			obs.PoolWorkerItems.Add(0, int64(executed))
			obs.PoolWorkerBusy.Add(0, int64(time.Since(start)))
		}()
		for i := 0; i < n; i++ {
			// A nil done (ctx == nil) never fires, so the poll is safe and
			// unconditional — every iteration observes cancellation.
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			if err := fn(i); err != nil {
				return err
			}
			executed++
		}
		return nil
	}

	// firstErr is each worker's lowest-index error; slots are padded only by
	// the natural struct size — false sharing is irrelevant next to fn cost.
	type firstErr struct {
		idx int
		err error
	}
	perWorker := make([]firstErr, workers)
	var stop atomic.Bool
	var cancelled atomic.Bool
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			perWorker[w].idx = -1
			// Utilization is accumulated per chunk (one clock read per 16
			// items) and flushed to the registry once per worker per Run.
			var items, busy int64
			defer func() {
				obs.PoolWorkerItems.Add(w, items)
				obs.PoolWorkerBusy.Add(w, busy)
			}()
			for {
				if stop.Load() {
					return
				}
				// Unconditional poll: a nil done (ctx == nil) never fires,
				// and every chunk claim observes cancellation.
				select {
				case <-done:
					cancelled.Store(true)
					stop.Store(true)
					return
				default:
				}
				start := int(cursor.Add(chunk)) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				// The claimed chunk runs to its own first error even after
				// stop is set elsewhere: chunks are claimed in ascending
				// order, so completing every claimed chunk guarantees the
				// minimum recorded error index equals the serial first error.
				chunkStart := time.Now()
				for i := start; i < end; i++ {
					if err := fn(i); err != nil {
						perWorker[w] = firstErr{idx: i, err: err}
						stop.Store(true)
						break
					}
					items++
				}
				busy += int64(time.Since(chunkStart))
			}
		}(w)
	}
	wg.Wait()

	best := firstErr{idx: -1}
	for _, fe := range perWorker {
		if fe.idx >= 0 && (best.idx < 0 || fe.idx < best.idx) {
			best = fe
		}
	}
	if best.idx >= 0 {
		return best.err
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}
