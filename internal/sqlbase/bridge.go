package sqlbase

import (
	"fmt"
	"strings"

	"gqldb/internal/graph"
	"gqldb/internal/pattern"
)

// PatternToSQL emits the Figure 4.2 multi-join SQL query for a label
// pattern: one V alias per pattern node (with its label equality), one E
// alias per pattern edge (joined on the endpoints' vids), and pairwise <>
// conditions for injectivity. Only patterns whose every node carries a
// constant label constraint and whose edges and residual predicate are
// empty can be encoded — exactly the §5 workloads.
func PatternToSQL(p *pattern.Pattern) (string, error) {
	if err := p.Compile(); err != nil {
		return "", err
	}
	if p.Global != nil {
		return "", fmt.Errorf("sqlbase: pattern %s has a residual predicate; not expressible in the V/E encoding", p.Name)
	}
	m := p.Motif
	if m.NumNodes() == 0 {
		return "", fmt.Errorf("sqlbase: empty pattern")
	}
	var sel, from, where []string
	for _, n := range m.Nodes() {
		label, ok := p.ConstLabel(n.ID)
		if !ok {
			return "", fmt.Errorf("sqlbase: pattern node %s has no constant label", n.Name)
		}
		alias := fmt.Sprintf("V%d", n.ID+1)
		sel = append(sel, alias+".vid")
		from = append(from, "V AS "+alias)
		where = append(where, fmt.Sprintf("%s.label = '%s'", alias, strings.ReplaceAll(label, "'", "''")))
	}
	for _, e := range m.Edges() {
		alias := fmt.Sprintf("E%d", e.ID+1)
		from = append(from, "E AS "+alias)
		where = append(where,
			fmt.Sprintf("V%d.vid = %s.vid1", e.From+1, alias),
			fmt.Sprintf("V%d.vid = %s.vid2", e.To+1, alias),
		)
	}
	for i := 0; i < m.NumNodes(); i++ {
		for j := i + 1; j < m.NumNodes(); j++ {
			where = append(where, fmt.Sprintf("V%d.vid <> V%d.vid", i+1, j+1))
		}
	}
	q := "SELECT " + strings.Join(sel, ", ") + "\nFROM " + strings.Join(from, ", ")
	if len(where) > 0 {
		q += "\nWHERE " + strings.Join(where, "\n  AND ")
	}
	return q + ";", nil
}

// MatchPattern runs a pattern through the SQL engine: translate, plan,
// execute. Rows are node-ID tuples in pattern-node order. Limit > 0 caps
// the result (the harness's 1000-hit cutoff); 0 is unlimited.
func (db *DB) MatchPattern(p *pattern.Pattern, limit int) ([][]graph.Value, error) {
	q, err := PatternToSQL(p)
	if err != nil {
		return nil, err
	}
	st, err := ParseSQL(q)
	if err != nil {
		return nil, err
	}
	return db.ExecLimit(st, limit)
}
