package sqlbase

import (
	"reflect"
	"testing"
)

// FuzzParseSQL asserts the SQL parser's total-function contract over
// arbitrary input: parse or error, never panic, never hang. ParseSQL sits
// on an untrusted input path (PatternToSQL output fed back through
// MatchPattern, plus ad-hoc statements via Exec), so accepted statements
// must also survive a render/reparse round trip: ParseSQL(st.String())
// reproduces st exactly. That invariant is what caught the ''-escape
// mismatch — PatternToSQL escaped quotes the lexer could not read back.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT a.b FROM t AS a;",
		"SELECT a.b, c.d FROM t AS a, u AS c WHERE a.b = c.d AND a.x <> 3;",
		"SELECT n.label FROM nodes AS n WHERE n.label = 'person';",
		"SELECT a.name FROM person AS a WHERE a.name = 'O''Brien';",
		"SELECT a.b FROM t WHERE a.b >= 1.5 AND a.b <= 2.25;",
		"select x.y from t as x where x.y != 'it''s';",
		"SELECT a.b FROM t AS a WHERE a.b = '';",
		"SELECT a.b FROM t AS a WHERE a.b = 'unterminated",
		"SELECT a.b FROM t AS a WHERE 1 = 1;",
		"SELECT where.x FROM where;",
		"SELECT a.b FROM as AS as WHERE a.b = 0.0;",
		"SELECT a.b FROM t trailing",
		"SELECT 1.2.3 FROM t;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		st, err := ParseSQL(src)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatal("nil statement without error")
		}
		rendered := st.String()
		st2, err := ParseSQL(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted input does not reparse\ninput:    %q\nrendered: %q\nerror:    %v", src, rendered, err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("round trip changed the statement\ninput:    %q\nrendered: %q\nfirst:    %#v\nsecond:   %#v", src, rendered, st, st2)
		}
		// Rendering must be a fixed point: a second render is identical.
		if r2 := st2.String(); r2 != rendered {
			t.Fatalf("render not a fixed point: %q then %q", rendered, r2)
		}
	})
}
