// Package sqlbase is the SQL-based comparator of §1.2 and §5: a small
// in-memory relational engine with per-column B-tree indexes, a SQL-subset
// parser (SELECT ... FROM ... AS ... WHERE conjunctions of =/<>/</> over
// columns and literals), and a greedy cost-based index-nested-loop join
// planner. A graph is stored relationally as V(vid, label) and E(vid1,
// vid2) — exactly the encoding the paper benchmarks against MySQL — and
// PatternToSQL emits the Figure 4.2 multi-join query for a pattern.
//
// The engine deliberately has only the information a generic RDBMS has:
// flat tables and per-column statistics. It cannot exploit graph structure,
// which is the paper's point.
package sqlbase

import (
	"fmt"

	"gqldb/internal/btree"
	"gqldb/internal/graph"
)

// Table is a heap of rows with optional per-column B-tree indexes.
type Table struct {
	Name    string
	Cols    []string
	Rows    [][]graph.Value
	indexes map[int]*colIndex
}

// colIndex is a posting-list index over one column; integer and string keys
// are kept in separate B-trees.
type colIndex struct {
	ints btree.Tree[int64, []int32]
	strs btree.Tree[string, []int32]
	keys int // distinct keys, for selectivity estimation
}

// NewTable creates an empty table.
func NewTable(name string, cols ...string) *Table {
	return &Table{Name: name, Cols: cols, indexes: map[int]*colIndex{}}
}

// Col returns the index of a column name.
func (t *Table) Col(name string) (int, error) {
	for i, c := range t.Cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sqlbase: table %s has no column %q", t.Name, name)
}

// CreateIndex builds a B-tree index on the named column (covering existing
// rows).
func (t *Table) CreateIndex(col string) error {
	c, err := t.Col(col)
	if err != nil {
		return err
	}
	if _, ok := t.indexes[c]; ok {
		return nil
	}
	ix := &colIndex{}
	for rid, row := range t.Rows {
		ix.add(row[c], int32(rid))
	}
	t.indexes[c] = ix
	return nil
}

func (ix *colIndex) add(v graph.Value, rid int32) {
	switch v.Kind() {
	case graph.KindInt:
		ix.ints.Update(v.AsInt(), func(old []int32, present bool) []int32 {
			if !present {
				ix.keys++
			}
			return append(old, rid)
		})
	case graph.KindString:
		ix.strs.Update(v.AsString(), func(old []int32, present bool) []int32 {
			if !present {
				ix.keys++
			}
			return append(old, rid)
		})
	}
}

// probe returns the row IDs with column value v, or (nil, false) when the
// column is unindexed or the value kind unsupported.
func (t *Table) probe(col int, v graph.Value) ([]int32, bool) {
	ix, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	switch v.Kind() {
	case graph.KindInt:
		rows, _ := ix.ints.Get(v.AsInt())
		return rows, true
	case graph.KindString:
		rows, _ := ix.strs.Get(v.AsString())
		return rows, true
	}
	return nil, false
}

// estProbe estimates the rows returned by an index probe: rows/distinct.
func (t *Table) estProbe(col int) (float64, bool) {
	ix, ok := t.indexes[col]
	if !ok || ix.keys == 0 {
		return 0, false
	}
	return float64(len(t.Rows)) / float64(ix.keys), true
}

// Insert appends a row, maintaining indexes. Inserting the wrong number of
// values for the table's columns is an error (it used to panic, which took
// down whole query evaluations over malformed loads).
func (t *Table) Insert(vals ...graph.Value) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("sqlbase: arity mismatch inserting into %s: %d values for %d columns", t.Name, len(vals), len(t.Cols))
	}
	rid := int32(len(t.Rows))
	t.Rows = append(t.Rows, vals)
	for c, ix := range t.indexes {
		ix.add(vals[c], rid)
	}
	return nil
}

// PlannerMode selects the join-order search strategy.
type PlannerMode uint8

// Planner modes.
const (
	// PlanGreedy picks joins greedily by estimated cost — cheap planning,
	// reasonable plans.
	PlanGreedy PlannerMode = iota
	// PlanExhaustive searches left-deep join orders exhaustively with
	// best-so-far pruning, like MySQL 5.0's default optimizer
	// (optimizer_search_depth=62). Planning cost grows explosively with
	// the number of joins — the very effect the paper blames for the SQL
	// implementation's failure to scale to large queries ("traditional
	// query optimization techniques such as dynamic programming do not
	// scale well with the number of joins", §1.2). A node budget caps the
	// search; on exhaustion the best plan found so far is completed
	// greedily.
	PlanExhaustive
)

// DB is a catalog of tables.
type DB struct {
	tables map[string]*Table
	// Planner selects the join-order strategy (default PlanGreedy).
	Planner PlannerMode
	// PlanBudget caps exhaustive plan-search node visits (default 3e6).
	PlanBudget int
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// Create registers a table.
func (db *DB) Create(t *Table) { db.tables[t.Name] = t }

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// LoadGraph stores g relationally: V(vid, label), E(vid1, vid2) with B-tree
// indexes on every column, matching the paper's MySQL setup. Undirected
// edges are stored in both orientations so that the fixed-orientation
// multi-join query of Figure 4.2 finds all embeddings (the relational
// analogue of the doubled Datalog edge facts of Figure 4.14).
func (db *DB) LoadGraph(g *graph.Graph) error {
	v := NewTable("V", "vid", "label")
	e := NewTable("E", "vid1", "vid2")
	for _, col := range []string{"vid", "label"} {
		if err := v.CreateIndex(col); err != nil {
			return err
		}
	}
	for _, col := range []string{"vid1", "vid2"} {
		if err := e.CreateIndex(col); err != nil {
			return err
		}
	}
	for _, n := range g.Nodes() {
		if err := v.Insert(graph.Int(int64(n.ID)), graph.String(g.Label(n.ID))); err != nil {
			return err
		}
	}
	for _, ed := range g.Edges() {
		if err := e.Insert(graph.Int(int64(ed.From)), graph.Int(int64(ed.To))); err != nil {
			return err
		}
		if !g.Directed && ed.From != ed.To {
			if err := e.Insert(graph.Int(int64(ed.To)), graph.Int(int64(ed.From))); err != nil {
				return err
			}
		}
	}
	db.Create(v)
	db.Create(e)
	return nil
}
