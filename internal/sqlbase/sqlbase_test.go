package sqlbase

import (
	"math/rand"
	"strings"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

func mustInsert(t *testing.T, tb *Table, vals ...graph.Value) {
	t.Helper()
	if err := tb.Insert(vals...); err != nil {
		t.Fatal(err)
	}
}

func TestInsertArityMismatch(t *testing.T) {
	v := NewTable("V", "vid", "label")
	if err := v.Insert(graph.Int(0)); err == nil {
		t.Error("arity mismatch should error, not panic")
	}
	if len(v.Rows) != 0 {
		t.Errorf("failed insert must not add rows; got %d", len(v.Rows))
	}
}

func TestTableInsertProbe(t *testing.T) {
	v := NewTable("V", "vid", "label")
	if err := v.CreateIndex("label"); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, v, graph.Int(0), graph.String("A"))
	mustInsert(t, v, graph.Int(1), graph.String("B"))
	mustInsert(t, v, graph.Int(2), graph.String("A"))
	c, _ := v.Col("label")
	rows, ok := v.probe(c, graph.String("A"))
	if !ok || len(rows) != 2 {
		t.Errorf("probe(A) = %v, %v", rows, ok)
	}
	// Index created after rows exist must cover them.
	if err := v.CreateIndex("vid"); err != nil {
		t.Fatal(err)
	}
	cv, _ := v.Col("vid")
	rows, ok = v.probe(cv, graph.Int(1))
	if !ok || len(rows) != 1 {
		t.Errorf("probe(vid=1) = %v, %v", rows, ok)
	}
	if _, err := v.Col("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestParseSQL(t *testing.T) {
	st, err := ParseSQL(`SELECT V1.vid, V2.vid FROM V AS V1, V AS V2, E AS E1
		WHERE V1.label = 'A' AND V2.label = 'B'
		AND V1.vid = E1.vid1 AND V2.vid = E1.vid2 AND V1.vid <> V2.vid;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cols) != 2 || len(st.From) != 3 || len(st.Where) != 5 {
		t.Errorf("parsed shape %d/%d/%d", len(st.Cols), len(st.From), len(st.Where))
	}
	if st.From[2].Alias != "E1" || st.From[2].Table != "E" {
		t.Errorf("from[2] = %+v", st.From[2])
	}
}

func TestParseSQLErrors(t *testing.T) {
	bad := []string{
		`FROM V`,
		`SELECT x FROM V`,             // bare column
		`SELECT v.x FROM`,             // missing table
		`SELECT v.x FROM V WHERE v.x`, // missing operator
		`SELECT v.x FROM V WHERE v.x = 'unterminated`,
		`SELECT v.x FROM V; garbage`,
	}
	for _, q := range bad {
		if _, err := ParseSQL(q); err == nil {
			t.Errorf("ParseSQL(%q): want error", q)
		}
	}
}

// fig416 is the running-example graph.
func fig416() *graph.Graph {
	g := graph.New("G")
	add := func(name, label string) graph.NodeID {
		return g.AddNode(name, graph.TupleOf("", "label", label))
	}
	a1 := add("A1", "A")
	a2 := add("A2", "A")
	b1 := add("B1", "B")
	b2 := add("B2", "B")
	c1 := add("C1", "C")
	c2 := add("C2", "C")
	g.AddEdge("", a1, b1, nil)
	g.AddEdge("", b1, c2, nil)
	g.AddEdge("", c2, a1, nil)
	g.AddEdge("", a1, c1, nil)
	g.AddEdge("", b2, c2, nil)
	g.AddEdge("", b2, a2, nil)
	return g
}

func trianglePattern() *pattern.Pattern {
	p := pattern.New("P")
	a := p.LabelNode("a", "A")
	b := p.LabelNode("b", "B")
	c := p.LabelNode("c", "C")
	p.AddEdge("", a, b, nil, nil)
	p.AddEdge("", b, c, nil, nil)
	p.AddEdge("", c, a, nil, nil)
	return p
}

// TestFig42Query runs the paper's own SQL query (Figure 4.2) against the
// Figure 4.1 graph and finds the single triangle.
func TestFig42Query(t *testing.T) {
	db := NewDB()
	if err := db.LoadGraph(fig416()); err != nil {
		t.Fatal(err)
	}
	rows, err := db.ExecSQL(`
		SELECT V1.vid, V2.vid, V3.vid
		FROM V AS V1, V AS V2, V AS V3,
		     E AS E1, E AS E2, E AS E3
		WHERE V1.label = 'A' AND V2.label = 'B' AND V3.label = 'C'
		  AND V1.vid = E1.vid1 AND V1.vid = E3.vid1
		  AND V2.vid = E1.vid2 AND V2.vid = E2.vid1
		  AND V3.vid = E2.vid2 AND V3.vid = E3.vid2
		  AND V1.vid <> V2.vid AND V1.vid <> V3.vid
		  AND V2.vid <> V3.vid;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1: %v", len(rows), rows)
	}
	// A1=0, B1=2, C2=5.
	if rows[0][0].AsInt() != 0 || rows[0][1].AsInt() != 2 || rows[0][2].AsInt() != 5 {
		t.Errorf("row = %v, want [0 2 5]", rows[0])
	}
}

func TestPatternToSQLShape(t *testing.T) {
	q, err := PatternToSQL(trianglePattern())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT V1.vid, V2.vid, V3.vid", "E AS E1", "V1.label = 'A'", "V1.vid <> V2.vid"} {
		if !strings.Contains(q, want) {
			t.Errorf("query missing %q:\n%s", want, q)
		}
	}
	// Unlabelled node: not encodable.
	p := pattern.New("P")
	p.AddNode("x", nil, nil)
	if _, err := PatternToSQL(p); err == nil {
		t.Error("unlabelled pattern should not translate")
	}
}

// TestAgainstNativeMatcher: the SQL path and the native matcher agree on
// exhaustive match counts over random labelled graphs.
func TestAgainstNativeMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := graph.New("G")
		n := 8 + rng.Intn(8)
		for i := 0; i < n; i++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(3)))))
		}
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdgeBetween(graph.NodeID(u), graph.NodeID(v)) {
				g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
		p := pattern.New("P")
		k := 2 + rng.Intn(2)
		var ids []graph.NodeID
		for i := 0; i < k; i++ {
			ids = append(ids, p.LabelNode("", string(rune('A'+rng.Intn(3)))))
		}
		for i := 1; i < k; i++ {
			p.AddEdge("", ids[rng.Intn(i)], ids[i], nil, nil)
		}
		native, _, err := match.Find(p, g, nil, match.Options{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		db := NewDB()
		if err := db.LoadGraph(g); err != nil {
			t.Fatal(err)
		}
		rows, err := db.MatchPattern(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(native) {
			t.Fatalf("trial %d: SQL %d rows, native %d matches\npattern %s", trial, len(rows), len(native), p)
		}
	}
}

// TestQuotedLabelRoundTrip: labels containing single quotes must survive
// the PatternToSQL → ParseSQL bridge. PatternToSQL always emitted the
// standard '' escape, but the lexer used to stop at the first quote, so
// MatchPattern failed on any label with an apostrophe.
func TestQuotedLabelRoundTrip(t *testing.T) {
	g := graph.New("G")
	a := g.AddNode("a", graph.TupleOf("", "label", "O'Brien"))
	b := g.AddNode("b", graph.TupleOf("", "label", "it's"))
	g.AddNode("c", graph.TupleOf("", "label", "plain"))
	g.AddEdge("", a, b, nil)

	p := pattern.New("P")
	pa := p.LabelNode("x", "O'Brien")
	pb := p.LabelNode("y", "it's")
	p.AddEdge("", pa, pb, nil, nil)

	q, err := PatternToSQL(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, "'O''Brien'") {
		t.Fatalf("PatternToSQL must ''-escape quotes:\n%s", q)
	}
	if _, err := ParseSQL(q); err != nil {
		t.Fatalf("bridge output does not parse: %v\n%s", err, q)
	}

	db := NewDB()
	if err := db.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	rows, err := db.MatchPattern(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	native, _, err := match.Find(p, g, nil, match.Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(native) != 1 {
		t.Fatalf("SQL %d rows, native %d matches, want 1 each", len(rows), len(native))
	}
}

func TestParseSQLEscapedQuote(t *testing.T) {
	st, err := ParseSQL(`SELECT v.x FROM V AS v WHERE v.x = 'a''b' AND v.x <> '''';`)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Where[0].R.Lit.Str; got != "a'b" {
		t.Errorf("escaped literal = %q, want %q", got, "a'b")
	}
	if got := st.Where[1].R.Lit.Str; got != "'" {
		t.Errorf("double-escape literal = %q, want %q", got, "'")
	}
	// A lone trailing escape is an unterminated literal, not an empty one.
	if _, err := ParseSQL(`SELECT v.x FROM V AS v WHERE v.x = ''';`); err == nil {
		t.Error("dangling escape must be an unterminated-literal error")
	}
}

func TestExecLimit(t *testing.T) {
	db := NewDB()
	v := NewTable("V", "vid", "label")
	db.Create(v)
	for i := 0; i < 100; i++ {
		mustInsert(t, v, graph.Int(int64(i)), graph.String("X"))
	}
	st, err := ParseSQL(`SELECT V1.vid FROM V AS V1 WHERE V1.label = 'X';`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.ExecLimit(st, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("limit: %d rows, want 10", len(rows))
	}
}

func TestExecErrors(t *testing.T) {
	db := NewDB()
	db.Create(NewTable("V", "vid", "label"))
	for _, q := range []string{
		`SELECT X.vid FROM Nope AS X;`,
		`SELECT X.vid FROM V AS X, V AS X;`,         // duplicate alias
		`SELECT Y.vid FROM V AS X;`,                 // unknown alias in cols
		`SELECT X.bogus FROM V AS X;`,               // unknown column
		`SELECT X.vid FROM V AS X WHERE Y.vid = 1;`, // unknown alias in where
		`SELECT X.vid FROM V AS X WHERE 1 = 1;`,     // no column reference
	} {
		if _, err := db.ExecSQL(q); err == nil {
			t.Errorf("ExecSQL(%q): want error", q)
		}
	}
}

// TestPlannerUsesIndexSeed: with a selective constant predicate the planner
// must not start from the big unfiltered table.
func TestPlannerSelectivity(t *testing.T) {
	g := graph.New("G")
	// 1000 nodes labelled X, one labelled RARE, connected in a chain.
	var prev graph.NodeID
	for i := 0; i < 1000; i++ {
		id := g.AddNode("", graph.TupleOf("", "label", "X"))
		if i > 0 {
			g.AddEdge("", prev, id, nil)
		}
		prev = id
	}
	rare := g.AddNode("", graph.TupleOf("", "label", "RARE"))
	g.AddEdge("", prev, rare, nil)
	db := NewDB()
	if err := db.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	p := pattern.New("P")
	a := p.LabelNode("a", "RARE")
	b := p.LabelNode("b", "X")
	p.AddEdge("", a, b, nil, nil)
	rows, err := db.MatchPattern(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1", len(rows))
	}
}
