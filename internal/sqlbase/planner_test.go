package sqlbase

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/pattern"
)

// rowsKey canonicalizes a result set for comparison.
func rowsKey(rows [][]graph.Value) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte(',')
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestExhaustivePlannerSameResults: both planners must return the same row
// set on random pattern queries; the exhaustive plan must never be worse
// than greedy under the engine's own cost model.
func TestExhaustivePlannerSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		g := graph.New("G")
		n := 30
		for i := 0; i < n; i++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(4)))))
		}
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdgeBetween(graph.NodeID(u), graph.NodeID(v)) {
				g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
		p := pattern.New("P")
		k := 3 + rng.Intn(2)
		var ids []graph.NodeID
		for i := 0; i < k; i++ {
			ids = append(ids, p.LabelNode("", string(rune('A'+rng.Intn(4)))))
		}
		for i := 1; i < k; i++ {
			p.AddEdge("", ids[rng.Intn(i)], ids[i], nil, nil)
		}

		greedyDB := NewDB()
		if err := greedyDB.LoadGraph(g); err != nil {
			t.Fatal(err)
		}
		exDB := NewDB()
		exDB.Planner = PlanExhaustive
		if err := exDB.LoadGraph(g); err != nil {
			t.Fatal(err)
		}
		r1, err := greedyDB.MatchPattern(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := exDB.MatchPattern(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rowsKey(r1) != rowsKey(r2) {
			t.Fatalf("trial %d: planners disagree: %d vs %d rows", trial, len(r1), len(r2))
		}
	}
}

// TestPlanBudget: a tiny budget must still produce a correct plan (the
// greedy incumbent).
func TestPlanBudget(t *testing.T) {
	g := graph.New("G")
	a := g.AddNode("", graph.TupleOf("", "label", "A"))
	b := g.AddNode("", graph.TupleOf("", "label", "B"))
	c := g.AddNode("", graph.TupleOf("", "label", "C"))
	g.AddEdge("", a, b, nil)
	g.AddEdge("", b, c, nil)
	db := NewDB()
	db.Planner = PlanExhaustive
	db.PlanBudget = 1
	if err := db.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	p := pattern.New("P")
	pa := p.LabelNode("x", "A")
	pb := p.LabelNode("y", "B")
	p.AddEdge("", pa, pb, nil, nil)
	rows, err := db.MatchPattern(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1", len(rows))
	}
}

// TestPlanExposed exercises the exported Plan/RunPlan instrumentation
// hooks used by probes and docs.
func TestPlanExposed(t *testing.T) {
	g := graph.New("G")
	a := g.AddNode("", graph.TupleOf("", "label", "A"))
	b := g.AddNode("", graph.TupleOf("", "label", "B"))
	g.AddEdge("", a, b, nil)
	db := NewDB()
	if err := db.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	st, err := ParseSQL(`SELECT V1.vid FROM V AS V1, V AS V2, E AS E1
		WHERE V1.label = 'A' AND V2.label = 'B'
		AND V1.vid = E1.vid1 AND V2.vid = E1.vid2;`)
	if err != nil {
		t.Fatal(err)
	}
	order, err := db.Plan(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	rows, err := db.RunPlan(st, order, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1", len(rows))
	}
}

func TestExplain(t *testing.T) {
	g := graph.New("G")
	a := g.AddNode("", graph.TupleOf("", "label", "A"))
	b := g.AddNode("", graph.TupleOf("", "label", "B"))
	g.AddEdge("", a, b, nil)
	db := NewDB()
	if err := db.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	st, err := ParseSQL(`SELECT V1.vid FROM V AS V1, E AS E1
		WHERE V1.label = 'A' AND V1.vid = E1.vid1;`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := db.Explain(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan (greedy, 1 joins)", "V AS V1", "E AS E1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
