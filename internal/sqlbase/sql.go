package sqlbase

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The SQL subset:
//
//	SELECT col (, col)* FROM tbl AS alias (, tbl AS alias)*
//	[WHERE cond (AND cond)*] ;
//
// where col is alias.column and cond is `operand op operand` with op one of
// = <> != < <= > >= and operands either alias.column references or literals
// (integers, floats, 'single-quoted strings').

// ColRef names alias.column.
type ColRef struct {
	Alias string
	Col   string
}

func (c ColRef) String() string { return c.Alias + "." + c.Col }

// Operand is a column reference or a literal.
type Operand struct {
	Col *ColRef
	Lit *Literal
}

// Literal is a constant in a condition.
type Literal struct {
	IsInt bool
	Int   int64
	IsStr bool
	Str   string
	Float float64
}

// Cond is one conjunct of the WHERE clause.
type Cond struct {
	L  Operand
	Op string
	R  Operand
}

// FromItem is one table reference with its alias.
type FromItem struct {
	Table string
	Alias string
}

// SelectStmt is a parsed query.
type SelectStmt struct {
	Cols  []ColRef
	From  []FromItem
	Where []Cond
}

// String renders the literal in the lexer's syntax: strings with ''-escaped
// quotes, and floats always with a decimal point so the Int/Float kind
// survives a reparse.
func (l *Literal) String() string {
	switch {
	case l.IsStr:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case l.IsInt:
		return strconv.FormatInt(l.Int, 10)
	default:
		s := strconv.FormatFloat(l.Float, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	}
}

func (o Operand) String() string {
	if o.Col != nil {
		return o.Col.String()
	}
	return o.Lit.String()
}

func (c Cond) String() string { return c.L.String() + " " + c.Op + " " + c.R.String() }

// String renders the statement back into the parsed subset. The rendering
// always spells the AS keyword and the trailing semicolon, so
// ParseSQL(st.String()) reproduces st exactly (the fuzzer's round-trip
// invariant).
func (st *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, c := range st.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(" FROM ")
	for i, f := range st.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Table + " AS " + f.Alias)
	}
	if len(st.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range st.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(";")
	return b.String()
}

// sqlToken kinds.
type sqlTokKind uint8

const (
	sqlEOF sqlTokKind = iota
	sqlIdent
	sqlNumber
	sqlString
	sqlPunct
)

type sqlTok struct {
	kind sqlTokKind
	text string
}

func sqlLex(src string) ([]sqlTok, error) {
	var out []sqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			out = append(out, sqlTok{sqlIdent, src[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			out = append(out, sqlTok{sqlNumber, src[i:j]})
			i = j
		case c == '\'':
			// A doubled quote inside the literal is an escaped quote
			// (standard SQL), matching what PatternToSQL emits.
			j := i + 1
			var b strings.Builder
			closed := false
			for j < len(src) {
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						b.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				b.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("sqlbase: unterminated string literal")
			}
			out = append(out, sqlTok{sqlString, b.String()})
			i = j + 1
		default:
			matched := false
			for _, p := range []string{"<>", "!=", "<=", ">="} {
				if strings.HasPrefix(src[i:], p) {
					out = append(out, sqlTok{sqlPunct, p})
					i += 2
					matched = true
					break
				}
			}
			if !matched && strings.IndexByte(",.()=<>;*", c) >= 0 {
				out = append(out, sqlTok{sqlPunct, string(c)})
				i++
				matched = true
			}
			if !matched {
				return nil, fmt.Errorf("sqlbase: unexpected character %q", c)
			}
		}
	}
	out = append(out, sqlTok{sqlEOF, ""})
	return out, nil
}

type sqlParser struct {
	toks []sqlTok
	pos  int
}

func (p *sqlParser) cur() sqlTok { return p.toks[p.pos] }

func (p *sqlParser) kw(s string) bool {
	t := p.cur()
	if t.kind == sqlIdent && strings.EqualFold(t.text, s) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) punct(s string) bool {
	t := p.cur()
	if t.kind == sqlPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) ident() (string, error) {
	t := p.cur()
	if t.kind != sqlIdent {
		return "", fmt.Errorf("sqlbase: expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// ParseSQL parses one SELECT statement.
func ParseSQL(src string) (*SelectStmt, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	if !p.kw("SELECT") {
		return nil, fmt.Errorf("sqlbase: expected SELECT")
	}
	st := &SelectStmt{}
	for {
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, c)
		if !p.punct(",") {
			break
		}
	}
	if !p.kw("FROM") {
		return nil, fmt.Errorf("sqlbase: expected FROM")
	}
	for {
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		alias := tbl
		if p.kw("AS") {
			alias, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		st.From = append(st.From, FromItem{Table: tbl, Alias: alias})
		if !p.punct(",") {
			break
		}
	}
	if p.kw("WHERE") {
		for {
			c, err := p.cond()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, c)
			if !p.kw("AND") {
				break
			}
		}
	}
	p.punct(";")
	if p.cur().kind != sqlEOF {
		return nil, fmt.Errorf("sqlbase: trailing input %q", p.cur().text)
	}
	return st, nil
}

func (p *sqlParser) colRef() (ColRef, error) {
	a, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if !p.punct(".") {
		return ColRef{}, fmt.Errorf("sqlbase: expected alias.column, found bare %q", a)
	}
	c, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Alias: a, Col: c}, nil
}

func (p *sqlParser) operand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case sqlIdent:
		c, err := p.colRef()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Col: &c}, nil
	case sqlNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Operand{}, fmt.Errorf("sqlbase: bad number %q", t.text)
			}
			return Operand{Lit: &Literal{Float: f}}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("sqlbase: bad number %q", t.text)
		}
		return Operand{Lit: &Literal{IsInt: true, Int: n}}, nil
	case sqlString:
		p.pos++
		return Operand{Lit: &Literal{IsStr: true, Str: t.text}}, nil
	}
	return Operand{}, fmt.Errorf("sqlbase: expected operand, found %q", t.text)
}

var sqlOps = map[string]string{"=": "=", "<>": "<>", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

func (p *sqlParser) cond() (Cond, error) {
	l, err := p.operand()
	if err != nil {
		return Cond{}, err
	}
	t := p.cur()
	op, ok := sqlOps[t.text]
	if t.kind != sqlPunct || !ok {
		return Cond{}, fmt.Errorf("sqlbase: expected comparison operator, found %q", t.text)
	}
	p.pos++
	r, err := p.operand()
	if err != nil {
		return Cond{}, err
	}
	return Cond{L: l, Op: op, R: r}, nil
}
