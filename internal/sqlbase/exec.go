package sqlbase

import (
	"fmt"
	"math"
	"strings"

	"gqldb/internal/graph"
)

// The planner mimics a conventional RDBMS optimizer: it greedily builds a
// left-deep index-nested-loop plan, starting from the alias with the most
// selective constant predicate and repeatedly joining the cheapest alias
// that has an indexable equality condition against the already-bound set.
// Selectivity is estimated from per-index distinct-key statistics — exactly
// the per-column information a relational engine has. What it lacks, by
// construction, is any notion of graph structure: no neighborhood pruning,
// no joint search-space reduction (§1.2).

// plannedAlias is the compiled access info for one FROM item.
type plannedAlias struct {
	item  FromItem
	table *Table
	// constEq are conditions alias.col = literal.
	constEq []plannedCond
	// others are all remaining conditions in which this alias appears.
	others []int // indexes into stmt.Where
}

type plannedCond struct {
	col int
	val graph.Value
}

// errStop aborts the nested-loop recursion once a row limit is reached.
var errStop = fmt.Errorf("sqlbase: row limit reached")

// Exec runs a parsed SELECT and returns the projected rows.
func (db *DB) Exec(st *SelectStmt) ([][]graph.Value, error) {
	return db.ExecLimit(st, 0)
}

// ExecLimit runs a parsed SELECT, stopping as soon as limit rows have been
// produced (0 = unlimited) — the harness's early-termination rule for
// high-hit queries.
func (db *DB) ExecLimit(st *SelectStmt, limit int) ([][]graph.Value, error) {
	plan, err := db.plan(st)
	if err != nil {
		return nil, err
	}
	return db.run(st, plan, limit)
}

// ExecSQL parses and runs a query string.
func (db *DB) ExecSQL(src string) ([][]graph.Value, error) {
	st, err := ParseSQL(src)
	if err != nil {
		return nil, err
	}
	return db.Exec(st)
}

func litValue(l *Literal) graph.Value {
	switch {
	case l.IsInt:
		return graph.Int(l.Int)
	case l.IsStr:
		return graph.String(l.Str)
	default:
		return graph.Float(l.Float)
	}
}

// plan orders the FROM aliases into a left-deep join sequence.
func (db *DB) plan(st *SelectStmt) ([]int, error) {
	n := len(st.From)
	aliases := make([]*plannedAlias, n)
	byAlias := map[string]int{}
	for i, f := range st.From {
		t, ok := db.Table(f.Table)
		if !ok {
			return nil, fmt.Errorf("sqlbase: unknown table %q", f.Table)
		}
		if _, dup := byAlias[f.Alias]; dup {
			return nil, fmt.Errorf("sqlbase: duplicate alias %q", f.Alias)
		}
		byAlias[f.Alias] = i
		aliases[i] = &plannedAlias{item: f, table: t}
	}
	condAliases := make([][]int, len(st.Where))
	for ci, c := range st.Where {
		var touched []int
		for _, op := range []Operand{c.L, c.R} {
			if op.Col != nil {
				ai, ok := byAlias[op.Col.Alias]
				if !ok {
					return nil, fmt.Errorf("sqlbase: unknown alias %q", op.Col.Alias)
				}
				touched = append(touched, ai)
			}
		}
		condAliases[ci] = touched
		// Record constant equalities for the seed estimate.
		if c.Op == "=" {
			if c.L.Col != nil && c.R.Lit != nil {
				ai := byAlias[c.L.Col.Alias]
				col, err := aliases[ai].table.Col(c.L.Col.Col)
				if err != nil {
					return nil, err
				}
				aliases[ai].constEq = append(aliases[ai].constEq, plannedCond{col, litValue(c.R.Lit)})
			}
			if c.R.Col != nil && c.L.Lit != nil {
				ai := byAlias[c.R.Col.Alias]
				col, err := aliases[ai].table.Col(c.R.Col.Col)
				if err != nil {
					return nil, err
				}
				aliases[ai].constEq = append(aliases[ai].constEq, plannedCond{col, litValue(c.L.Lit)})
			}
		}
		for _, ai := range touched {
			aliases[ai].others = append(aliases[ai].others, ci)
		}
	}

	// Base cardinality estimate for each alias alone.
	base := make([]float64, n)
	for i, a := range aliases {
		est := float64(len(a.table.Rows))
		for _, ce := range a.constEq {
			if rows, ok := a.table.probe(ce.col, ce.val); ok {
				if e := float64(len(rows)); e < est {
					est = e
				}
			}
		}
		base[i] = est
	}

	// extension estimates the rows scanned when joining alias i to the
	// already-bound set.
	extension := func(i int, used func(int) bool) (float64, error) {
		cost := base[i]
		joined := false
		for _, ci := range aliases[i].others {
			c := st.Where[ci]
			if c.Op != "=" || c.L.Col == nil || c.R.Col == nil {
				continue
			}
			li, ri := byAlias[c.L.Col.Alias], byAlias[c.R.Col.Alias]
			var probeCol string
			switch {
			case li == i && used(ri):
				probeCol = c.L.Col.Col
			case ri == i && used(li):
				probeCol = c.R.Col.Col
			default:
				continue
			}
			col, err := aliases[i].table.Col(probeCol)
			if err != nil {
				return 0, err
			}
			if est, ok := aliases[i].table.estProbe(col); ok {
				joined = true
				if est < cost {
					cost = est
				}
			}
		}
		if !joined {
			cost = base[i] * 1e6 // cross product: strongly penalize
		}
		return cost, nil
	}

	greedy, err := greedyPlan(n, base, extension)
	if err != nil {
		return nil, err
	}
	if db.Planner == PlanExhaustive && n <= 62 {
		return db.exhaustivePlan(n, base, extension, greedy)
	}
	return greedy, nil
}

// planCost evaluates the estimated cost of a complete join order.
func planCost(order []int, base []float64, extension func(int, func(int) bool) (float64, error)) (float64, error) {
	used := make([]bool, len(base))
	isUsed := func(i int) bool { return used[i] }
	card, cost := 1.0, 0.0
	for pos, i := range order {
		var scan float64
		var err error
		if pos == 0 {
			scan = base[i]
		} else {
			scan, err = extension(i, isUsed)
			if err != nil {
				return 0, err
			}
		}
		card *= scan
		cost += card
		used[i] = true
	}
	return cost, nil
}

// greedyPlan picks the smallest seed and repeatedly joins the cheapest
// extension.
func greedyPlan(n int, base []float64, extension func(int, func(int) bool) (float64, error)) ([]int, error) {
	order := make([]int, 0, n)
	used := make([]bool, n)
	isUsed := func(i int) bool { return used[i] }
	best := 0
	for i := 1; i < n; i++ {
		if base[i] < base[best] {
			best = i
		}
	}
	order = append(order, best)
	used[best] = true
	for len(order) < n {
		bestIdx, bestCost := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			cost, err := extension(i, isUsed)
			if err != nil {
				return nil, err
			}
			if cost < bestCost {
				bestIdx, bestCost = i, cost
			}
		}
		order = append(order, bestIdx)
		used[bestIdx] = true
	}
	return order, nil
}

// exhaustivePlan searches all left-deep join orders depth-first with
// best-so-far pruning (the MySQL-5.0-style optimizer), seeded with the
// greedy plan as the incumbent so the result is never worse than greedy
// even when the node budget stops the search early. The planning effort
// itself grows steeply with the number of joins — the §1.2 scaling effect.
func (db *DB) exhaustivePlan(n int, base []float64, extension func(int, func(int) bool) (float64, error), greedy []int) ([]int, error) {
	budget := db.PlanBudget
	if budget <= 0 {
		budget = 3_000_000
	}
	visits := 0
	bestCost, err := planCost(greedy, base, extension)
	if err != nil {
		return nil, err
	}
	bestOrder := append([]int(nil), greedy...)
	order := make([]int, 0, n)
	var mask uint64
	isUsed := func(i int) bool { return mask&(1<<i) != 0 }

	var dfs func(card, cost float64) error
	dfs = func(card, cost float64) error {
		if cost >= bestCost {
			return nil
		}
		if len(order) == n {
			bestCost = cost
			bestOrder = append(bestOrder[:0], order...)
			return nil
		}
		for i := 0; i < n && visits < budget; i++ {
			if isUsed(i) {
				continue
			}
			visits++
			var scan float64
			var err error
			if len(order) == 0 {
				scan = base[i]
			} else {
				scan, err = extension(i, isUsed)
				if err != nil {
					return err
				}
			}
			newCard := card * scan
			newCost := cost + newCard
			order = append(order, i)
			mask |= 1 << i
			if err := dfs(newCard, newCost); err != nil {
				return err
			}
			order = order[:len(order)-1]
			mask &^= 1 << i
		}
		return nil
	}
	if err := dfs(1, 0); err != nil {
		return nil, err
	}
	return bestOrder, nil
}

// run executes the nested-loop plan.
func (db *DB) run(st *SelectStmt, order []int, limit int) ([][]graph.Value, error) {
	n := len(st.From)
	byAlias := map[string]int{}
	tables := make([]*Table, n)
	for i, f := range st.From {
		byAlias[f.Alias] = i
		tables[i], _ = db.Table(f.Table)
	}
	colOf := func(ref *ColRef) (int, int, error) {
		ai, ok := byAlias[ref.Alias]
		if !ok {
			return 0, 0, fmt.Errorf("sqlbase: unknown alias %q", ref.Alias)
		}
		c, err := tables[ai].Col(ref.Col)
		return ai, c, err
	}
	// Validate the projection list eagerly so queries over empty tables
	// still report bad column references.
	for i := range st.Cols {
		if _, _, err := colOf(&st.Cols[i]); err != nil {
			return nil, err
		}
	}

	// Precompile conditions: per step (position in order), the conditions
	// fully bound once that step's alias is placed.
	type compiled struct {
		lAlias, lCol int
		lLit         graph.Value
		lIsLit       bool
		op           string
		rAlias, rCol int
		rLit         graph.Value
		rIsLit       bool
	}
	pos := make([]int, n)
	for i, ai := range order {
		pos[ai] = i
	}
	stepConds := make([][]compiled, n)
	// probes[i] lists equality conditions usable as index probes when
	// placing step i: (boundAlias, boundCol, myCol).
	type probe struct {
		srcAlias, srcCol int
		myCol            int
	}
	stepProbes := make([][]probe, n)
	stepConstEq := make([][]plannedCond, n)

	for _, c := range st.Where {
		var comp compiled
		comp.op = c.Op
		maxPos := -1
		if c.L.Col != nil {
			ai, col, err := colOf(c.L.Col)
			if err != nil {
				return nil, err
			}
			comp.lAlias, comp.lCol = ai, col
			if pos[ai] > maxPos {
				maxPos = pos[ai]
			}
		} else {
			comp.lIsLit, comp.lLit = true, litValue(c.L.Lit)
		}
		if c.R.Col != nil {
			ai, col, err := colOf(c.R.Col)
			if err != nil {
				return nil, err
			}
			comp.rAlias, comp.rCol = ai, col
			if pos[ai] > maxPos {
				maxPos = pos[ai]
			}
		} else {
			comp.rIsLit, comp.rLit = true, litValue(c.R.Lit)
		}
		if maxPos < 0 {
			return nil, fmt.Errorf("sqlbase: condition with no column reference")
		}
		stepConds[maxPos] = append(stepConds[maxPos], comp)
		if c.Op == "=" {
			switch {
			case c.L.Col != nil && c.R.Col != nil:
				li, ri := byAlias[c.L.Col.Alias], byAlias[c.R.Col.Alias]
				lc, _ := tables[li].Col(c.L.Col.Col)
				rc, _ := tables[ri].Col(c.R.Col.Col)
				if pos[li] > pos[ri] {
					stepProbes[pos[li]] = append(stepProbes[pos[li]], probe{ri, rc, lc})
				} else if pos[ri] > pos[li] {
					stepProbes[pos[ri]] = append(stepProbes[pos[ri]], probe{li, lc, rc})
				}
			case c.L.Col != nil && c.R.Lit != nil:
				ai := byAlias[c.L.Col.Alias]
				col, _ := tables[ai].Col(c.L.Col.Col)
				stepConstEq[pos[ai]] = append(stepConstEq[pos[ai]], plannedCond{col, litValue(c.R.Lit)})
			case c.R.Col != nil && c.L.Lit != nil:
				ai := byAlias[c.R.Col.Alias]
				col, _ := tables[ai].Col(c.R.Col.Col)
				stepConstEq[pos[ai]] = append(stepConstEq[pos[ai]], plannedCond{col, litValue(c.L.Lit)})
			}
		}
	}

	cur := make([][]graph.Value, n) // current row per alias
	var out [][]graph.Value
	project := func() error {
		row := make([]graph.Value, len(st.Cols))
		for i := range st.Cols {
			ai, c, err := colOf(&st.Cols[i])
			if err != nil {
				return err
			}
			row[i] = cur[ai][c]
		}
		out = append(out, row)
		if limit > 0 && len(out) >= limit {
			return errStop
		}
		return nil
	}

	holds := func(c compiled) bool {
		var l, r graph.Value
		if c.lIsLit {
			l = c.lLit
		} else {
			l = cur[c.lAlias][c.lCol]
		}
		if c.rIsLit {
			r = c.rLit
		} else {
			r = cur[c.rAlias][c.rCol]
		}
		cmp, err := l.Compare(r)
		if err != nil {
			return c.op == "<>"
		}
		switch c.op {
		case "=":
			return cmp == 0
		case "<>":
			return cmp != 0
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		case ">=":
			return cmp >= 0
		}
		return false
	}

	var rec func(step int) error
	rec = func(step int) error {
		if step == n {
			return project()
		}
		ai := order[step]
		t := tables[ai]
		// Choose the most selective available index probe.
		var candidates []int32
		haveProbe := false
		tryProbe := func(col int, v graph.Value) {
			if rows, ok := t.probe(col, v); ok {
				if !haveProbe || len(rows) < len(candidates) {
					candidates, haveProbe = rows, true
				}
			}
		}
		for _, ce := range stepConstEq[step] {
			tryProbe(ce.col, ce.val)
		}
		for _, pr := range stepProbes[step] {
			tryProbe(pr.myCol, cur[pr.srcAlias][pr.srcCol])
		}
		iterate := func(row []graph.Value) error {
			cur[ai] = row
			for _, c := range stepConds[step] {
				if !holds(c) {
					return nil
				}
			}
			return rec(step + 1)
		}
		if haveProbe {
			for _, rid := range candidates {
				if err := iterate(t.Rows[rid]); err != nil {
					return err
				}
			}
			return nil
		}
		for _, row := range t.Rows {
			if err := iterate(row); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil && err != errStop {
		return nil, err
	}
	return out, nil
}

// Plan exposes the join-order planner for instrumentation and tests.
func (db *DB) Plan(st *SelectStmt) ([]int, error) { return db.plan(st) }

// Explain renders the chosen join order with per-step table/alias names,
// an EXPLAIN-style view of the plan.
func (db *DB) Explain(st *SelectStmt) (string, error) {
	order, err := db.plan(st)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	mode := "greedy"
	if db.Planner == PlanExhaustive {
		mode = "exhaustive"
	}
	fmt.Fprintf(&b, "plan (%s, %d joins):\n", mode, len(order)-1)
	for step, i := range order {
		f := st.From[i]
		fmt.Fprintf(&b, "  %2d. %s AS %s (%d rows)\n", step+1, f.Table, f.Alias, db.rowCount(f.Table))
	}
	return b.String(), nil
}

func (db *DB) rowCount(table string) int {
	if t, ok := db.Table(table); ok {
		return len(t.Rows)
	}
	return 0
}

// RunPlan executes a specific join order; exposed for instrumentation.
func (db *DB) RunPlan(st *SelectStmt, order []int, limit int) ([][]graph.Value, error) {
	return db.run(st, order, limit)
}
