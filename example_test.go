package gqldb_test

import (
	"fmt"
	"log"

	gqldb "gqldb"
)

// ExampleMatch finds a labelled triangle in a small graph — the Figure 4.1
// query.
func ExampleMatch() {
	g := gqldb.NewGraph("G")
	a := g.AddNode("a1", gqldb.TupleOf("", "label", "A"))
	b := g.AddNode("b1", gqldb.TupleOf("", "label", "B"))
	c := g.AddNode("c1", gqldb.TupleOf("", "label", "C"))
	g.AddEdge("", a, b, nil)
	g.AddEdge("", b, c, nil)
	g.AddEdge("", c, a, nil)

	p := gqldb.NewPattern("P")
	x := p.LabelNode("x", "A")
	y := p.LabelNode("y", "B")
	z := p.LabelNode("z", "C")
	p.AddEdge("", x, y, nil, nil)
	p.AddEdge("", y, z, nil, nil)
	p.AddEdge("", z, x, nil, nil)

	ms, _, err := gqldb.Match(p, g, nil, gqldb.Options{Exhaustive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", len(ms))
	for _, v := range ms[0].Nodes {
		fmt.Println(g.Node(v).Name)
	}
	// Output:
	// matches: 1
	// a1
	// b1
	// c1
}

// ExampleRun evaluates a FLWR query with a return clause: one result graph
// per matched author.
func ExampleRun() {
	paper, err := gqldb.ParseGraph(`graph p1 <inproceedings booktitle="SIGMOD"> {
		node v1 <author name="He">;
		node v2 <author name="Singh">;
	};`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gqldb.Run(`
		for graph Q { node v <author>; } exhaustive in doc("papers")
		return graph R { node u <label=Q.v.name>; };`,
		gqldb.Store{"papers": gqldb.Collection{paper}})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range res.Out {
		fmt.Println(g.Node(0).Attrs.GetOr("label").AsString())
	}
	// Output:
	// He
	// Singh
}

// ExampleBuildIndex shows the optimized §4 pipeline over an indexed graph.
func ExampleBuildIndex() {
	g := gqldb.NewGraph("G")
	a := g.AddNode("", gqldb.TupleOf("", "label", "A"))
	b := g.AddNode("", gqldb.TupleOf("", "label", "B"))
	g.AddEdge("", a, b, nil)

	ix := gqldb.BuildIndex(g, 1, true)
	p := gqldb.NewPattern("P")
	x := p.LabelNode("x", "A")
	y := p.LabelNode("y", "B")
	p.AddEdge("", x, y, nil, nil)

	ok, err := gqldb.MatchOne(p, g, ix, gqldb.Optimized())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok)
	// Output:
	// true
}
