package gqldb

import (
	"context"
	"errors"
	"testing"
)

// smallStore builds a two-document store used by the ctx-first API tests.
func ctxTestCollection(t *testing.T) Collection {
	t.Helper()
	var c Collection
	for _, src := range []string{
		`graph G1 { node a <label="A">; node b <label="B">; edge (a, b); };`,
		`graph G2 { node a <label="A">; node b <label="B">; node c <label="C">;
		  edge (a, b); edge (b, c); };`,
		`graph G3 { node x <label="X">; };`,
	} {
		g, err := ParseGraph(src)
		if err != nil {
			t.Fatal(err)
		}
		c = append(c, g)
	}
	return c
}

func TestSelectContextMatchesSelect(t *testing.T) {
	c := ctxTestCollection(t)
	p, err := ParsePattern(`graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Select(p, c, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	var stats MatchStats
	got, err := SelectContext(context.Background(), p, c, Options{Exhaustive: true}, 4, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("SelectContext: %d matches, Select: %d", len(got), len(want))
	}
	for i := range got {
		if got[i].G != want[i].G {
			t.Fatalf("match %d bound to different graph", i)
		}
	}
	if len(stats.Ops) != 1 || stats.Ops[0].Op != "selection" {
		t.Fatalf("stats.Ops = %+v, want one selection record", stats.Ops)
	}
}

func TestMatchContextCancelled(t *testing.T) {
	c := ctxTestCollection(t)
	p, err := ParsePattern(`graph P { node v1 where label="A"; };`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MatchContext(ctx, p, c[0], nil, Options{Exhaustive: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchContext err = %v, want context.Canceled", err)
	}
	if _, err := MatchOneContext(ctx, p, c[0], nil, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchOneContext err = %v, want context.Canceled", err)
	}
}

func TestProductJoinComposeContext(t *testing.T) {
	c := ctxTestCollection(t)
	ctx := context.Background()
	var stats MatchStats

	prod, err := Product(ctx, c[:2], c[1:], 3, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(prod) != 4 {
		t.Fatalf("product size %d, want 4", len(prod))
	}

	joined, err := Join(ctx, c[:2], c[1:], nil, 2, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != len(prod) {
		t.Fatalf("nil-predicate join size %d, want %d", len(joined), len(prod))
	}

	p, err := ParsePattern(`graph P { node v1 where label="A"; };`)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := SelectContext(ctx, p, c, Options{Exhaustive: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &Template{Name: "out", Members: []TMember{TNode{Ref: []string{"P", "v1"}}}}
	comp, err := ComposeMatches(ctx, tmpl, "P", ms, 2, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != len(ms) {
		t.Fatalf("compose size %d, want %d", len(comp), len(ms))
	}

	sj, err := StructuralJoin(ctx, &Template{Name: "pair", Members: []TMember{
		TNode{Ref: []string{"L", "v1"}}, TNode{Ref: []string{"R", "v1"}},
	}}, "L", "R", ms, ms, 2, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(sj) != len(ms)*len(ms) {
		t.Fatalf("structural join size %d, want %d", len(sj), len(ms)*len(ms))
	}
	if len(stats.Ops) == 0 {
		t.Fatal("no operator stats recorded")
	}

	// Cancelled contexts abort every operator.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Product(cctx, c, c, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled product err = %v", err)
	}
	if _, err := ComposeMatches(cctx, tmpl, "P", ms, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compose err = %v", err)
	}
}

func TestRunContext(t *testing.T) {
	c := ctxTestCollection(t)
	store := Store{"db": c}
	src := `
graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };
for P exhaustive in doc("db")
return graph { node P.v1; node P.v2; edge (P.v1, P.v2); };
`
	want, err := Run(src, store)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4, -1} {
		got, err := RunContext(context.Background(), src, store, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Out) != len(want.Out) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got.Out), len(want.Out))
		}
		for i := range got.Out {
			if got.Out[i].Signature() != want.Out[i].Signature() {
				t.Fatalf("workers=%d: result %d differs from serial run", workers, i)
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, src, store, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext err = %v, want context.Canceled", err)
	}
}

func TestGraphBuilderFacade(t *testing.T) {
	b := NewGraphBuilder("G", false)
	a := b.AddNode("a", nil)
	b.AddNode("a", nil) // duplicate: accumulated, not fatal mid-build
	b.AddEdge("", a, 99, nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded despite duplicate node and bad edge")
	}

	ok := NewGraphBuilder("H", true)
	x := ok.AddNode("x", nil)
	y := ok.AddNode("y", nil)
	ok.AddEdge("", x, y, nil)
	g, err := ok.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("built graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
}
