// Package gqldb is a Go implementation of GraphQL — the graph query
// language and access methods of He & Singh, "Graphs-at-a-time: Query
// Language and Access Methods for Graph Databases" (SIGMOD 2008).
//
// Graphs are the basic unit of information: queries select matched graphs
// from collections via graph patterns (subgraph isomorphism plus attribute
// predicates) and compose new graphs from them via graph templates. The
// selection operator is served by graph-specific access methods: a B-tree
// label index, local pruning with neighborhood subgraphs and profiles,
// global search-space refinement by pseudo subgraph isomorphism, and
// cost-based search-order optimization.
//
// This facade re-exports the library's main entry points:
//
//   - data model: Graph, Tuple, Value, Collection (NewGraph, NewTuple, ...)
//   - patterns and matching: Pattern, Match/MatchOne, Options
//   - the graph algebra: Select, CartesianProduct, Join, Compose, Union,
//     Difference, Intersect (package internal/algebra)
//   - the query language: Parse and Run for full FLWR programs
//
// The subsystem packages under internal/ carry the implementation:
// internal/match (Algorithms 4.1 and 4.2), internal/index (neighborhood
// subgraphs, profiles, label index), internal/sqlbase (the SQL-based
// comparator), internal/datalog and internal/ra (the §3.5 expressiveness
// bridges), internal/figures (the §5 evaluation harness).
package gqldb

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"gqldb/internal/algebra"
	"gqldb/internal/ast"
	"gqldb/internal/exec"
	"gqldb/internal/expr"
	"gqldb/internal/gindex"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/parser"
	"gqldb/internal/pattern"
	"gqldb/internal/reach"
	"gqldb/internal/server"
	"gqldb/internal/shardsrv"
	"gqldb/internal/store"
)

// Core data-model types.
type (
	// Graph is an attributed multigraph (§3.1).
	Graph = graph.Graph
	// Tuple is a tagged attribute list annotating nodes, edges and graphs.
	Tuple = graph.Tuple
	// Value is a dynamically typed attribute value.
	Value = graph.Value
	// Collection is an ordered collection of graphs — the operand of
	// every algebra operator.
	Collection = graph.Collection
	// NodeID identifies a node within one graph.
	NodeID = graph.NodeID
	// EdgeID identifies an edge within one graph.
	EdgeID = graph.EdgeID
)

// Pattern and matching types.
type (
	// Pattern is a graph pattern P = (motif, predicate) (§3.2).
	Pattern = pattern.Pattern
	// Options configures selection evaluation (§4).
	Options = match.Options
	// Mapping is one feasible mapping of pattern elements to graph
	// elements.
	Mapping = match.Mapping
	// MatchStats instruments a selection evaluation (search-space sizes
	// and per-phase times — the quantities plotted in §5).
	MatchStats = match.Stats
	// Index bundles the per-graph access structures (label index,
	// neighborhood subgraphs, profiles).
	Index = match.Index
	// MatchedGraph is the triple ⟨Φ, P, G⟩ produced by selection.
	MatchedGraph = algebra.MatchedGraph
	// Template constructs new graphs from matched graphs (composition).
	Template = algebra.Template
	// TMember is one template body declaration.
	TMember = algebra.TMember
	// Template members: embed an operand graph, declare nodes and edges
	// (with computed attributes), unify nodes.
	TGraph = algebra.TGraph
	TNode  = algebra.TNode
	TEdge  = algebra.TEdge
	TUnify = algebra.TUnify
	// AttrTemplate computes one attribute of a template element.
	AttrTemplate = algebra.AttrTemplate
	// Operand is an actual template parameter (matched or plain graph).
	Operand = algebra.Operand
	// Expr is a predicate expression.
	Expr = expr.Expr
	// Store maps document names to collections for query execution. It is
	// the compatibility constructor shape: Run/NewEngine wrap it into an
	// unsharded DocStore. For sharding, versioned registration or result
	// caching, build a DocStore and use NewEngineOver.
	Store = exec.Store
	// DocStore is the versioned, sharded in-process document store: every
	// RegisterDoc bumps a monotonic version, queries read immutable
	// snapshots, and collections are hash-partitioned into shards with
	// optional per-shard path indexes (see StoreOptions).
	DocStore = store.DocStore
	// StoreOptions configures a DocStore: shard count per document and the
	// per-shard path-feature index length (0 disables indexing).
	StoreOptions = store.Options
	// StoreSnapshot is one immutable view of a DocStore at a single
	// version; in-flight queries each pin one.
	StoreSnapshot = store.Snapshot
	// VersionedStore is the engine-facing document-store interface
	// (DocStore is the in-process implementation; an RPC client is the
	// multi-process seam).
	VersionedStore = store.Store
	// ResultCache is the LRU whole-program result cache keyed on
	// (canonical program text, documents read, store version), invalidated
	// by version bump; set it on Engine.Cache and query via
	// Engine.RunQuery.
	ResultCache = store.Cache
	// CacheStats is a ResultCache counter snapshot (hits, misses,
	// evictions, invalidations, entries).
	CacheStats = store.CacheStats
	// PlanCache is the LRU search-plan cache keyed on (pattern shape,
	// graph, planning options), invalidated by store-version bump; set it
	// on Engine.Plans so repeated patterns over unchanged documents skip
	// retrieval, refinement and search-order planning.
	PlanCache = match.PlanCache
	// PlanCacheStats is a PlanCache counter snapshot (hits, misses,
	// evictions, invalidations, entries).
	PlanCacheStats = match.PlanCacheStats
	// ShardSelector evaluates selection over one store shard — the seam a
	// multi-process deployment implements with an RPC shard client.
	ShardSelector = store.ShardSelector
	// RemoteSelector is the multi-process ShardSelector: it fans shard
	// requests to gqlshard endpoints over the store wire protocol, with
	// per-attempt timeouts, bounded retry rotation across replicas,
	// optional hedging, a stale-mirror resync handshake and explicit
	// partial-failure degradation. Set it on Engine.Selector to turn an
	// embedded engine into a cluster frontend.
	RemoteSelector = store.RemoteSelector
	// ShardHealth is one shard endpoint's last-probe state, surfaced on
	// the server's /healthz.
	ShardHealth = store.ShardHealth
	// ShardError is the per-shard failure report of a remote selection
	// (errors.As target): endpoint, document, shard ordinal, attempts.
	ShardError = store.ShardError
	// ShardServer is the shard-server side of the multi-process read path
	// (the cmd/gqlshard handler): it mirrors documents, answers per-shard
	// selection jobs over the wire protocol and converges via /shard/sync.
	ShardServer = shardsrv.Server
	// ShardServerConfig configures a ShardServer (partition width, index
	// length, body cap, worker cap).
	ShardServerConfig = shardsrv.Config
	// QueryParseError marks an Engine.RunQuery failure as a syntax error in
	// the program source (errors.As target).
	QueryParseError = exec.ParseError
	// QueryResult is the outcome of running a FLWR program.
	QueryResult = exec.Result
	// Engine evaluates parsed programs against a store; set Workers for
	// parallel for-clause evaluation and use RunContext for cancellation.
	Engine = exec.Engine
	// OpStat is one bulk-operator execution record (operator name, item
	// count, worker count, wall time) collected in MatchStats.Ops.
	OpStat = match.OpStat
	// GraphBuilder is the batch graph loader: mutators accumulate every
	// construction error with its operation position, and Build returns the
	// graph or the joined errors — the API for ingesting untrusted input.
	GraphBuilder = graph.Builder
	// Span is one node of a query-evaluation trace tree: a named phase or
	// operator with wall time, annotations, counters and children. Returned
	// in QueryResult.Trace when tracing is enabled.
	Span = obs.Span
	// SpanAttr is one key/value annotation on a trace span.
	SpanAttr = obs.Attr
	// SlowQueryRecord is handed to Engine.SlowQueryLog when a query crosses
	// Engine.SlowQuery.
	SlowQueryRecord = obs.SlowQueryRecord
	// RequestOptions are per-request overrides for a shared Engine; see
	// Engine.Request.
	RequestOptions = exec.RequestOptions
	// ServerConfig configures the HTTP query frontend (admission limit,
	// body cap, per-request deadlines, access logging).
	ServerConfig = server.Config
	// Server is the HTTP query frontend over an Engine: POST /query,
	// POST /explain, GET /metrics, /debug/vars and /healthz, with
	// admission control and graceful drain. See cmd/gqlserver for the
	// production binary.
	Server = server.Server
	// AccessRecord is one structured access-log entry emitted by the
	// server's request middleware.
	AccessRecord = server.AccessRecord
)

// Graph constructors.
var (
	// NewGraph returns an empty undirected graph.
	NewGraph = graph.New
	// NewDirectedGraph returns an empty directed graph.
	NewDirectedGraph = graph.NewDirected
	// NewTuple returns an empty tagged tuple.
	NewTuple = graph.NewTuple
	// TupleOf builds a tuple from alternating name/value pairs.
	TupleOf = graph.TupleOf
	// Int, Float, String, Bool construct attribute values.
	Int    = graph.Int
	Float  = graph.Float
	String = graph.String
	Bool   = graph.Bool
	// NewGraphBuilder returns an error-accumulating batch loader.
	NewGraphBuilder = graph.NewBuilder
)

// Pattern constructors.
var (
	// NewPattern returns an empty pattern with an undirected motif.
	NewPattern = pattern.New
	// NewDirectedPattern returns an empty pattern with a directed motif.
	NewDirectedPattern = pattern.NewDirected
)

// Template operand constructors.
var (
	// MatchedOperand binds a matched graph as a template parameter.
	MatchedOperand = algebra.MatchedOperand
	// GraphOperand binds a plain graph as a template parameter.
	GraphOperand = algebra.GraphOperand
)

// Matching configurations.
var (
	// Optimized is the paper's recommended §5 combination: retrieval by
	// profiles, joint refinement, greedy-ordered search.
	Optimized = match.Optimized
	// Baseline is attribute retrieval plus unordered search.
	Baseline = match.Baseline
	// BuildIndex precomputes the access structures for a data graph.
	BuildIndex = match.BuildIndex
	// Log10Space returns log10 of a candidate-space size (Definition 4.9).
	Log10Space = match.Log10Space
)

// Local pruning modes (§4.2).
const (
	PruneNone     = match.PruneNone
	PruneProfile  = match.PruneProfile
	PruneSubgraph = match.PruneSubgraph
)

// Search-order planners (§4.4).
const (
	OrderInput  = match.OrderInput
	OrderGreedy = match.OrderGreedy
	OrderDP     = match.OrderDP
)

// Match finds mappings of p in g. ix may be nil (no index acceleration).
func Match(p *Pattern, g *Graph, ix *Index, opt Options) ([]Mapping, *MatchStats, error) {
	return match.Find(p, g, ix, opt)
}

// MatchContext is Match with cancellation and deadline support: the context
// is polled on every backtracking step of the search, so cancelling returns
// ctx.Err() within one step.
func MatchContext(ctx context.Context, p *Pattern, g *Graph, ix *Index, opt Options) ([]Mapping, *MatchStats, error) {
	return match.FindContext(ctx, p, g, ix, opt)
}

// MatchOne reports whether p has at least one mapping in g.
func MatchOne(p *Pattern, g *Graph, ix *Index, opt Options) (bool, error) {
	return match.Exists(p, g, ix, opt)
}

// MatchOneContext is MatchOne with cancellation and deadline support.
func MatchOneContext(ctx context.Context, p *Pattern, g *Graph, ix *Index, opt Options) (bool, error) {
	return match.ExistsContext(ctx, p, g, ix, opt)
}

// SelectOptions configures SelectGraphs; the zero value is a serial,
// unindexed, unintrumented selection with default matching options.
type SelectOptions struct {
	// Match configures the §4 access methods (pruning, refinement, search
	// order, exhaustiveness).
	Match Options
	// Workers bounds the worker pool (<= 0 means GOMAXPROCS, 1 is serial).
	// Output is identical at every setting, in the same order.
	Workers int
	// Index optionally supplies per-graph access structures.
	Index func(*Graph) *Index
	// Stats, when non-nil, receives a per-operator timing/fan-out record.
	Stats *MatchStats
}

// SelectGraphs evaluates σ_P(C) — all bindings of p across the collection —
// under a context on a bounded worker pool. This is the single selection
// entry point; Select, SelectParallel and SelectContext are deprecated
// wrappers over it.
func SelectGraphs(ctx context.Context, p *Pattern, c Collection, opts SelectOptions) ([]*MatchedGraph, error) {
	return algebra.SelectionContext(ctx, p, c, opts.Match, opts.Index, opts.Workers, opts.Stats)
}

// Select evaluates σ_P(C) serially.
//
// Deprecated: use SelectGraphs(ctx, p, c, SelectOptions{Match: opt, Workers: 1}).
func Select(p *Pattern, c Collection, opt Options) ([]*MatchedGraph, error) {
	return SelectGraphs(context.Background(), p, c, SelectOptions{Match: opt, Workers: 1})
}

// SelectParallel evaluates σ_P(C) with collection members matched
// concurrently (workers=0 uses GOMAXPROCS); results are identical to
// Select, in the same order.
//
// Deprecated: use SelectGraphs(ctx, p, c, SelectOptions{Match: opt, Workers: workers}).
func SelectParallel(p *Pattern, c Collection, opt Options, workers int) ([]*MatchedGraph, error) {
	if workers == 0 {
		workers = -1 // ParallelSelection's 0 meant GOMAXPROCS
	}
	return SelectGraphs(context.Background(), p, c, SelectOptions{Match: opt, Workers: workers})
}

// SelectContext evaluates σ_P(C) under a context on a bounded worker pool.
//
// Deprecated: use SelectGraphs(ctx, p, c, SelectOptions{Match: opt, Workers: workers, Stats: stats}).
func SelectContext(ctx context.Context, p *Pattern, c Collection, opt Options, workers int, stats *MatchStats) ([]*MatchedGraph, error) {
	return SelectGraphs(ctx, p, c, SelectOptions{Match: opt, Workers: workers, Stats: stats})
}

// Product computes the Cartesian product C × D (§3.3) on a bounded worker
// pool with cancellation; output order matches the serial nested-loop order.
func Product(ctx context.Context, c, d Collection, workers int, stats *MatchStats) (Collection, error) {
	return algebra.CartesianProductContext(ctx, c, d, workers, stats)
}

// Join computes the valued join C ⋈_pred D = σ_pred(C × D) (§3.3) on a
// bounded worker pool with cancellation; a nil predicate degenerates to the
// product.
func Join(ctx context.Context, c, d Collection, pred Expr, workers int, stats *MatchStats) (Collection, error) {
	return algebra.ValuedJoinContext(ctx, c, d, pred, workers, stats)
}

// ComposeMatches instantiates template t (parameter name param) for every
// matched graph (§3.3's composition ω_T) on a bounded worker pool with
// cancellation, preserving collection order.
func ComposeMatches(ctx context.Context, t *Template, param string, ms []*MatchedGraph, workers int, stats *MatchStats) (Collection, error) {
	return algebra.ComposeContext(ctx, t, param, ms, workers, stats)
}

// StructuralJoin instantiates the two-parameter template for every pair of
// matched graphs on a bounded worker pool with cancellation, in serial pair
// order.
func StructuralJoin(ctx context.Context, t *Template, p1, p2 string, c, d []*MatchedGraph, workers int, stats *MatchStats) (Collection, error) {
	return algebra.StructuralJoinContext(ctx, t, p1, p2, c, d, workers, stats)
}

// Set operators over collections (set semantics up to graph signature).
var (
	// Union computes C ∪ D.
	Union = algebra.Union
	// Difference computes C − D.
	Difference = algebra.Difference
	// Intersection computes C ∩ D.
	Intersection = algebra.Intersection
)

// Binary collection serialization (the compact on-disk format).
var (
	// WriteBinary serializes a collection of attributed graphs.
	WriteBinary = graph.WriteBinary
	// ReadBinary deserializes a collection written by WriteBinary.
	ReadBinary = graph.ReadBinary
)

// CollectionIndex is a path-feature index over a collection of small
// graphs: Candidates filters, Select runs filter-then-verify (§4's first
// database category).
type CollectionIndex = gindex.Index

// BuildCollectionIndex enumerates path features up to maxLen edges
// (3 is a good default) for every graph in the collection.
func BuildCollectionIndex(c Collection, maxLen int) *CollectionIndex {
	return gindex.Build(c, maxLen)
}

// Reachability is a reachability index over one directed graph (SCC
// condensation plus interval labelings), the access method for recursive
// path patterns.
type Reachability = reach.Index

// BuildReachability constructs a reachability index with k randomized
// labelings (0 = default) and a deterministic seed.
func BuildReachability(g *Graph, k int, seed int64) *Reachability {
	return reach.New(g, k, seed)
}

// ParseExpr parses a predicate expression in the language's where-clause
// syntax, e.g. `v1.name = "A" & v2.year > 2000`.
func ParseExpr(src string) (Expr, error) { return parser.ParseExpr(src) }

// ParseQuery parses a GraphQL program (Appendix 4.A syntax).
func ParseQuery(src string) (*ast.Program, error) { return parser.Parse(src) }

// Streaming result pipeline types (see QueryStream and Engine.StreamQuery).
type (
	// ResultSink receives result graphs one at a time as the pipeline
	// produces them; returning ErrStopStream stops the query early as a
	// truncated success, any other error aborts it.
	ResultSink = exec.ResultSink
	// CollectSink is the trivial buffering sink: Emit appends to Graphs.
	CollectSink = exec.CollectSink
	// StreamResult summarizes a streamed query (rows emitted, rows
	// skipped, truncation, variables, stats, trace).
	StreamResult = exec.StreamResult
	// StreamOptions paginates a streamed query (Skip/Take) and optionally
	// pins it to a store snapshot.
	StreamOptions = exec.StreamOptions
	// DocStats is a per-document inventory (graph/shard/node/edge counts
	// and attribute-name occurrence), as served by GET /v2/schema.
	DocStats = store.DocStats
)

// ErrStopStream, returned from ResultSink.Emit, stops the stream early:
// the query finishes as a truncated success rather than an error.
var ErrStopStream = exec.ErrStopStream

// AllRows as a Take value streams the whole result set.
const AllRows = exec.AllRows

// QueryOptions configures Query and QueryStream. Exactly one of Engine,
// Store or Docs selects the execution target (checked in that order; a nil
// Engine and Store fall back to Docs, and the zero value runs against an
// empty document map).
type QueryOptions struct {
	// Docs maps document names to collections; it is wrapped into an
	// unsharded DocStore (the simple path, mirroring the old Run).
	Docs Store
	// Store is a versioned document store — the sharded/indexed path.
	Store VersionedStore
	// Engine executes the query on an existing engine via Engine.Request,
	// inheriting its cache, options and slow-query configuration.
	Engine *Engine
	// Workers configures for-clause fan-out (0 or 1 serial, negative
	// GOMAXPROCS). With Engine set, nonzero overrides the engine default.
	Workers int
	// Trace enables span collection even without a trace on ctx.
	Trace bool
	// Skip drops the first rows of every return clause before emission
	// (QueryStream only); skipped rows are never instantiated.
	Skip int
	// Take caps emitted rows (QueryStream only); <= 0 streams all rows.
	Take int
}

// engine resolves the options to a request-scoped engine.
func (o QueryOptions) engine() *Engine {
	if o.Engine != nil {
		return o.Engine.Request(RequestOptions{Workers: o.Workers, Trace: o.Trace})
	}
	var e *Engine
	if o.Store != nil {
		e = exec.NewOver(o.Store)
	} else {
		e = exec.New(o.Docs)
	}
	e.Workers = o.Workers
	e.Trace = o.Trace
	return e
}

// Query parses and executes a GraphQL program, returning the buffered
// result. This is the single buffered entry point; Run and RunContext are
// deprecated wrappers over it. Cancellation is honored down to individual
// backtracking steps of each selection, and when ctx carries a trace
// (StartTrace) — or Trace is set — every phase records spans and the tree
// is returned in QueryResult.Trace. Parse failures return a *QueryParseError.
func Query(ctx context.Context, src string, opts QueryOptions) (*QueryResult, error) {
	return opts.engine().RunQuery(ctx, src)
}

// QueryStream parses and executes a GraphQL program, pushing result graphs
// into sink as the pipeline produces them instead of buffering: constant
// memory in the result cardinality, with Skip/Take pagination applied
// before instantiation.
func QueryStream(ctx context.Context, src string, sink ResultSink, opts QueryOptions) (*StreamResult, error) {
	take := opts.Take
	if take <= 0 {
		take = AllRows
	}
	return opts.engine().StreamQuery(ctx, src, sink, StreamOptions{Skip: opts.Skip, Take: take})
}

// Run parses and executes a GraphQL program against a document store.
//
// Deprecated: use Query(ctx, src, QueryOptions{Docs: st}).
func Run(src string, st Store) (*QueryResult, error) {
	return Query(context.Background(), src, QueryOptions{Docs: st})
}

// RunContext parses and executes a GraphQL program under a context on a
// bounded worker pool.
//
// Deprecated: use Query(ctx, src, QueryOptions{Docs: st, Workers: workers}).
func RunContext(ctx context.Context, src string, st Store, workers int) (*QueryResult, error) {
	return Query(ctx, src, QueryOptions{Docs: st, Workers: workers})
}

// StartTrace enables tracing for everything evaluated under the returned
// context: a started root span is installed and returned. End it after the
// query and read the tree with Span.Render (or via QueryResult.Trace).
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	root := obs.NewTrace(name)
	return obs.NewContext(ctx, root), root
}

// TraceFromContext returns the context's current trace span, or nil when
// tracing is disabled. All Span methods are nil-safe.
func TraceFromContext(ctx context.Context) *Span { return obs.FromContext(ctx) }

// WriteMetrics dumps the process-wide query metrics (counters, latency
// histograms and per-worker pool utilization, also published via expvar
// under "gqldb") in the Prometheus text exposition format.
func WriteMetrics(w io.Writer) error { return obs.WritePrometheus(w) }

// MetricsHandler returns an http.Handler serving WriteMetrics — mount it
// on /metrics to expose the process to a Prometheus scraper.
func MetricsHandler() http.Handler { return obs.Handler() }

// NewServer returns the HTTP query frontend over cfg.Engine. The Server
// is itself an http.Handler serving POST /query, POST /explain,
// GET /metrics, GET /debug/vars and GET /healthz; pair it with
// Server.Drain for signal-driven graceful shutdown (see cmd/gqlserver).
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewRemoteSelector returns a multi-process shard selector over the given
// gqlshard base URLs; configure with its Set* knobs before serving and set
// it on Engine.Selector.
func NewRemoteSelector(endpoints []string) *RemoteSelector {
	return store.NewRemoteSelector(endpoints)
}

// NewShardServer returns a shard server (the cmd/gqlshard handler) with an
// empty document mirror.
func NewShardServer(cfg ShardServerConfig) *ShardServer { return shardsrv.New(cfg) }

// MetricsSnapshot returns the current value of every process-wide metric:
// counters as int64, histograms as {count, sum_seconds} maps.
func MetricsSnapshot() map[string]any { return obs.Snapshot() }

// NewEngine returns a query engine over the document map with default
// options; set Workers, Opts, IxFor or CollIndex before calling
// Run/RunContext. The map is wrapped into an unsharded DocStore at
// construction.
func NewEngine(st Store) *Engine { return exec.New(st) }

// NewEngineOver returns a query engine reading through a versioned store —
// the constructor for sharded, indexed or result-cached deployments:
//
//	docs := gqldb.NewDocStore(gqldb.StoreOptions{Shards: 8, IndexMaxLen: 3})
//	docs.RegisterDoc("DBLP", papers)
//	eng := gqldb.NewEngineOver(docs)
//	eng.Cache = gqldb.NewResultCache(256)
//	res, err := eng.RunQuery(ctx, query)
func NewEngineOver(docs VersionedStore) *Engine { return exec.NewOver(docs) }

// NewDocStore returns an empty versioned document store; register
// collections with RegisterDoc (each registration bumps the store version).
func NewDocStore(opts StoreOptions) *DocStore { return store.New(opts) }

// NewResultCache returns an LRU whole-program result cache holding at most
// capacity entries; assign it to Engine.Cache.
func NewResultCache(capacity int) *ResultCache { return store.NewCache(capacity) }

// NewPlanCache returns an LRU search-plan cache holding at most capacity
// plans; assign it to Engine.Plans.
func NewPlanCache(capacity int) *PlanCache { return match.NewPlanCache(capacity) }

// ParseGraph parses a single graph literal in the language syntax
// (`graph G { node v1 <label="A">; ... };`).
func ParseGraph(src string) (*Graph, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Stmts) != 1 {
		return nil, fmt.Errorf("gqldb: expected a single graph declaration, found %d statements", len(prog.Stmts))
	}
	d, ok := prog.Stmts[0].(*ast.GraphDecl)
	if !ok {
		return nil, fmt.Errorf("gqldb: expected a graph declaration")
	}
	return d.ToGraph()
}

// ParsePattern parses a single pattern declaration in the language syntax
// (`graph P { node v1 where name="A"; };`).
func ParsePattern(src string) (*Pattern, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Stmts) != 1 {
		return nil, fmt.Errorf("gqldb: expected a single pattern declaration, found %d statements", len(prog.Stmts))
	}
	d, ok := prog.Stmts[0].(*ast.GraphDecl)
	if !ok {
		return nil, fmt.Errorf("gqldb: expected a graph pattern declaration")
	}
	return d.ToPattern()
}
