package gqldb

// Cross-engine integration tests: the native access methods (§4), the
// SQL-based comparator (§1.2/§5) and the Datalog translation (§3.5) are
// three independent implementations of graph pattern matching; on any
// workload they must agree exactly.

import (
	"math/rand"
	"testing"

	"gqldb/internal/datalog"
	"gqldb/internal/gen"
	"gqldb/internal/gindex"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
	"gqldb/internal/sqlbase"
)

// TestThreeEnginesAgree runs label patterns through all three engines on a
// moderate generated graph and compares exhaustive match counts.
func TestThreeEnginesAgree(t *testing.T) {
	g := gen.PrefAttach(300, 900, 12, 99)
	ix := BuildIndex(g, 1, true)
	db := sqlbase.NewDB()
	if err := db.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	ddb := datalog.NewDB()
	datalog.GraphToFacts(ddb, g)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		var p *pattern.Pattern
		if trial%2 == 0 {
			p = gen.GraphCliqueQuery(g, 2+rng.Intn(2), rng)
		} else {
			p = gen.SubgraphQuery(g, 3, rng)
		}
		if p == nil {
			continue
		}

		native, _, err := Match(p, g, ix, Optimized())
		if err != nil {
			t.Fatal(err)
		}
		rows, err := db.MatchPattern(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		rule, err := datalog.PatternToRule(p, "Hit")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := datalog.Eval(ddb, []datalog.Rule{rule}); err != nil {
			t.Fatal(err)
		}
		dlCount := ddb.Count("Hit")

		if len(native) != len(rows) || len(native) != dlCount {
			t.Fatalf("trial %d: engines disagree: native=%d sql=%d datalog=%d\npattern: %s",
				trial, len(native), len(rows), dlCount, p)
		}
		// Reset derived facts for the next pattern by using a fresh DB.
		ddb = datalog.NewDB()
		datalog.GraphToFacts(ddb, g)
	}
}

// TestCollectionPipelineAgrees: over a collection of small graphs, the
// indexed filter-then-verify path, plain selection and parallel selection
// agree on which graphs match.
func TestCollectionPipelineAgrees(t *testing.T) {
	coll := gen.DBLP(120, 40, []string{"SIGMOD", "VLDB"}, 5)
	// Give papers a co-author structure so edge patterns are meaningful:
	// connect all authors within a paper.
	for _, g := range coll {
		n := g.NumNodes()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.AddEdge("", NodeID(i), NodeID(j), nil)
			}
		}
		for _, nd := range g.Nodes() {
			// Label nodes by author-pool bucket so label patterns apply.
			name := nd.Attrs.GetOr("name").AsString()
			g.Node(nd.ID).Attrs.Set("label", String("a"+name[len(name)-1:]))
		}
	}
	p := NewPattern("Q")
	a := p.LabelNode("x", "a1")
	b := p.LabelNode("y", "a2")
	p.AddEdge("", a, b, nil, nil)

	plain, err := Select(p, coll, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SelectParallel(p, coll, Options{Exhaustive: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(par) {
		t.Fatalf("parallel selection disagrees: %d vs %d", len(par), len(plain))
	}
	cix := gindex.Build(coll, 2)
	hits, verified, err := cix.Select(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct graphs with >= 1 match must equal the filter+verify hits.
	distinct := map[*Graph]bool{}
	for _, m := range plain {
		distinct[m.G] = true
	}
	if len(hits) != len(distinct) {
		t.Fatalf("indexed selection found %d graphs, plain %d", len(hits), len(distinct))
	}
	if verified > len(coll) {
		t.Fatal("index verified more than the collection")
	}
	t.Logf("collection=%d candidates verified=%d hits=%d", len(coll), verified, len(hits))
}

// TestEndToEndWorkload is a miniature of the full §5 pipeline: build the
// PPI stand-in, index it, run a mixed clique workload with the optimized
// options and validate the §4 invariants on every query.
func TestEndToEndWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("workload test skipped in -short mode")
	}
	g := gen.YeastPPI(4)
	ix := BuildIndex(g, 1, true)
	rng := rand.New(rand.NewSource(4))
	pool := ix.Labels.TopLabels(40)
	checked := 0
	for size := 2; size <= 5; size++ {
		for q := 0; q < 6; q++ {
			var p *pattern.Pattern
			if q%2 == 0 {
				p = gen.CliqueQuery(size, pool, rng)
			} else {
				p = gen.GraphCliqueQuery(g, size, rng)
			}
			if p == nil {
				continue
			}
			opt := Optimized()
			opt.Limit = 1000
			opt.CollectStats = true
			msOpt, st, err := Match(p, g, ix, opt)
			if err != nil {
				t.Fatal(err)
			}
			base := Baseline()
			base.Limit = 1000
			msBase, _, err := Match(p, g, ix, base)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Truncated && len(msOpt) != len(msBase) {
				t.Fatalf("optimized and baseline disagree: %d vs %d", len(msOpt), len(msBase))
			}
			for u := range st.CandRefined {
				if st.CandRefined[u] > st.CandLocal[u] || st.CandLocal[u] > st.CandBaseline[u] {
					t.Fatal("candidate-set monotonicity violated")
				}
			}
			checked++
		}
	}
	if checked < 15 {
		t.Fatalf("only %d queries checked", checked)
	}
}

var _ = match.Options{} // keep the import for documentation symmetry
