GO ?= go

.PHONY: all build test test-server test-cluster test-walcrash race vet gqlvet fuzz-smoke bench-obs bench-store bench-vet bench-match bench-check check

all: check

## build: compile every package
build:
	$(GO) build ./...

## test: run the unit and integration tests
test:
	$(GO) test ./...

## test-server: black-box gate for cmd/gqlserver — builds the binary,
## starts it on a random port with documents loaded from disk, and
## drives /query (byte-identical to the embedded engine), /explain,
## /metrics, /healthz, overload -> 429, a deadline -> JSON timeout, and
## a SIGTERM drain that must exit 0 within the grace period
test-server:
	$(GO) test ./internal/server -run TestServerBlackBox -v

## test-cluster: black-box gate for the distributed read path — builds
## cmd/gqlshard and cmd/gqlserver, starts a 3-mirror shard cluster plus a
## frontend on random ports, and asserts byte-identical answers vs the
## embedded engine, version-handshake resync after /admin/doc, retry past
## a shard killed mid-stream, an empty restarted mirror converging, the
## fail-mode (502 shard_error) and -allow-partial frontends, the shard
## counters on /metrics, and a clean SIGTERM drain of every process
test-cluster:
	$(GO) test ./internal/cluster -run TestClusterBlackBox -v

## test-walcrash: durability gate — re-executes the test binary as a
## child that applies mutation batches against a WAL-backed store, kills
## it with SIGKILL mid-workload, reopens the directory and asserts the
## recovered store is byte-identical (content hashes and per-graph
## signatures) to an in-memory oracle replay of the acknowledged batches
test-walcrash:
	$(GO) test ./internal/store -run TestWALCrashRecovery -v

## race: run the tests under the race detector (includes the
## ParallelSelection work-stealing stress tests and the shared-engine
## HTTP handler stress in internal/server)
race:
	$(GO) test -race ./...

## vet: run the standard toolchain vet
vet:
	$(GO) vet ./...

## gqlvet: run the project-specific analyzers (internal/analysis) over
## the module, _test.go files included; non-zero exit on any finding
gqlvet:
	$(GO) run ./cmd/gqlvet -tests ./...

## fuzz-smoke: brief fuzz of the parsers, the binary/TSV graph readers,
## the expression evaluator and the HTTP query frontend (panics and 500s
## are failures); run longer locally when touching internal/lexer,
## internal/parser, internal/sqlbase, internal/expr, internal/server or
## the internal/graph load paths
fuzz-smoke:
	$(GO) test ./internal/parser -run 'FuzzParse$$' -fuzz 'FuzzParse$$' -fuzztime 10s
	$(GO) test ./internal/parser -run FuzzParseMutation -fuzz FuzzParseMutation -fuzztime 10s
	$(GO) test ./internal/graph -run FuzzReadBinary -fuzz FuzzReadBinary -fuzztime 5s
	$(GO) test ./internal/graph -run FuzzReadTSV -fuzz FuzzReadTSV -fuzztime 5s
	$(GO) test ./internal/sqlbase -run FuzzParseSQL -fuzz FuzzParseSQL -fuzztime 5s
	$(GO) test ./internal/expr -run 'FuzzEval$$' -fuzz 'FuzzEval$$' -fuzztime 10s
	$(GO) test ./internal/expr -run FuzzCompiledEval -fuzz FuzzCompiledEval -fuzztime 10s
	$(GO) test ./internal/server -run 'FuzzServerQuery$$' -fuzz 'FuzzServerQuery$$' -fuzztime 10s
	$(GO) test ./internal/server -run 'FuzzServerQueryV2$$' -fuzz 'FuzzServerQueryV2$$' -fuzztime 10s
	$(GO) test ./internal/store -run FuzzShardWire -fuzz FuzzShardWire -fuzztime 10s

## bench-obs: tracing-overhead guard — the off variant must stay within
## noise of BenchmarkParallelExec (observability disabled is one context
## lookup per operator); the run is recorded in BENCH_obs.json (commit
## the refreshed file to keep the trajectory in git history)
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkTracingOverhead|BenchmarkParallelExec' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_obs.json

## bench-store: storage-layer guard — compiles and runs the sharded
## fan-out, result-cache and write-path benchmarks (cache hits must be
## cheaper than re-evaluation; incremental Apply and index maintenance
## must beat the full rebuilds they replace); recorded in
## BENCH_store.json. The benchtime matches bench-check so the recorded
## baseline and the gate measure under the same conditions.
bench-store:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedSelection|BenchmarkCacheHit|BenchmarkApplyMutations|BenchmarkIncrementalIndex' -benchtime 100ms -count 5 -benchmem ./internal/store \
		| $(GO) run ./cmd/benchjson -o BENCH_store.json

## bench-match: match hot-path guard — the plan-cache-hot run must beat
## the uncached baseline on time and allocations (the cold run pays the
## Put), and the compiled predicate must beat the tree-walking
## evaluator; recorded in BENCH_match.json. The benchtime matches
## bench-check so baseline and gate measure under the same conditions.
bench-match:
	$(GO) test -run '^$$' -bench 'BenchmarkMatchPlanned|BenchmarkCompiledPredicate' -benchtime 100ms -count 5 -benchmem ./internal/match ./internal/expr \
		| $(GO) run ./cmd/benchjson -o BENCH_match.json

## bench-vet: analyzer-suite latency — one full gqlvet pass (parse,
## type-check, all eight analyzers) over the driver's fixture module;
## recorded in BENCH_vet.json
bench-vet:
	$(GO) test -run '^$$' -bench 'BenchmarkVet' -benchtime 1x -benchmem ./cmd/gqlvet \
		| $(GO) run ./cmd/benchjson -o BENCH_vet.json

## bench-check: regression gate — re-run the store and match bench suites
## and compare ns/op against the last committed trajectory entry in the
## BENCH_*.json files; any >25% slowdown on a tracked benchmark fails the
## target (the files are not rewritten; refresh them with the bench-*
## targets). The time-based benchtime amortizes per-iteration scheduler
## noise and -count 5 gives benchjson best-of-N samples to collapse, so a
## single preempted run cannot fake a regression; the whole-query obs
## suite stays out of the gate for the same reason.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedSelection|BenchmarkCacheHit|BenchmarkApplyMutations|BenchmarkIncrementalIndex' -benchtime 100ms -count 5 -benchmem ./internal/store \
		| $(GO) run ./cmd/benchjson -check BENCH_store.json
	$(GO) test -run '^$$' -bench 'BenchmarkMatchPlanned|BenchmarkCompiledPredicate' -benchtime 100ms -count 5 -benchmem ./internal/match ./internal/expr \
		| $(GO) run ./cmd/benchjson -check BENCH_match.json

## check: everything CI runs
check: build vet gqlvet test test-server test-cluster test-walcrash race fuzz-smoke
