GO ?= go

.PHONY: all build test test-server race vet gqlvet fuzz-smoke bench-obs check

all: check

## build: compile every package
build:
	$(GO) build ./...

## test: run the unit and integration tests
test:
	$(GO) test ./...

## test-server: black-box gate for cmd/gqlserver — builds the binary,
## starts it on a random port with documents loaded from disk, and
## drives /query (byte-identical to the embedded engine), /explain,
## /metrics, /healthz, overload -> 429, a deadline -> JSON timeout, and
## a SIGTERM drain that must exit 0 within the grace period
test-server:
	$(GO) test ./internal/server -run TestServerBlackBox -v

## race: run the tests under the race detector (includes the
## ParallelSelection work-stealing stress tests and the shared-engine
## HTTP handler stress in internal/server)
race:
	$(GO) test -race ./...

## vet: run the standard toolchain vet
vet:
	$(GO) vet ./...

## gqlvet: run the project-specific analyzers (internal/analysis);
## non-zero exit on any finding
gqlvet:
	$(GO) run ./cmd/gqlvet ./...

## fuzz-smoke: brief fuzz of the parsers, the binary/TSV graph readers
## and the expression evaluator (panics are failures); run longer
## locally when touching internal/lexer, internal/parser,
## internal/sqlbase, internal/expr or the internal/graph load paths
fuzz-smoke:
	$(GO) test ./internal/parser -run FuzzParse -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/graph -run FuzzReadBinary -fuzz FuzzReadBinary -fuzztime 5s
	$(GO) test ./internal/graph -run FuzzReadTSV -fuzz FuzzReadTSV -fuzztime 5s
	$(GO) test ./internal/sqlbase -run FuzzParseSQL -fuzz FuzzParseSQL -fuzztime 5s
	$(GO) test ./internal/expr -run FuzzEval -fuzz FuzzEval -fuzztime 10s

## bench-obs: tracing-overhead guard — the off variant must stay within
## noise of BenchmarkParallelExec (observability disabled is one context
## lookup per operator)
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkTracingOverhead|BenchmarkParallelExec' -benchtime 1x .

## check: everything CI runs
check: build vet gqlvet test test-server race fuzz-smoke
