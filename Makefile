GO ?= go

.PHONY: all build test race vet gqlvet fuzz-smoke bench-obs check

all: check

## build: compile every package
build:
	$(GO) build ./...

## test: run the unit and integration tests
test:
	$(GO) test ./...

## race: run the tests under the race detector (includes the
## ParallelSelection work-stealing stress tests)
race:
	$(GO) test -race ./...

## vet: run the standard toolchain vet
vet:
	$(GO) vet ./...

## gqlvet: run the project-specific analyzers (internal/analysis);
## non-zero exit on any finding
gqlvet:
	$(GO) run ./cmd/gqlvet ./...

## fuzz-smoke: brief fuzz of the parsers and the binary/TSV graph
## readers (panics are failures); run longer locally when touching
## internal/lexer, internal/parser, internal/sqlbase or the
## internal/graph load paths
fuzz-smoke:
	$(GO) test ./internal/parser -run FuzzParse -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/graph -run FuzzReadBinary -fuzz FuzzReadBinary -fuzztime 5s
	$(GO) test ./internal/graph -run FuzzReadTSV -fuzz FuzzReadTSV -fuzztime 5s
	$(GO) test ./internal/sqlbase -run FuzzParseSQL -fuzz FuzzParseSQL -fuzztime 5s

## bench-obs: tracing-overhead guard — the off variant must stay within
## noise of BenchmarkParallelExec (observability disabled is one context
## lookup per operator)
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkTracingOverhead|BenchmarkParallelExec' -benchtime 1x .

## check: everything CI runs
check: build vet gqlvet test race fuzz-smoke
