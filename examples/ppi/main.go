// PPI demonstrates the §4 access methods on the protein-interaction
// workload of §5.1: clique (complex) queries over a yeast-scale network,
// comparing the baseline matcher with profile pruning, joint refinement
// (Algorithm 4.2) and search-order optimization, and printing the
// search-space reduction each stage achieves.
//
// Run with:
//
//	go run ./examples/ppi
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	gqldb "gqldb"
	"gqldb/internal/gen"
)

func main() {
	fmt.Println("generating yeast-like PPI network (3112 proteins, 12519 interactions)...")
	g := gen.YeastPPI(7)

	fmt.Println("building label index + radius-1 neighborhood profiles/subgraphs...")
	start := time.Now()
	ix := gqldb.BuildIndex(g, 1, true)
	fmt.Printf("  index built in %v\n", time.Since(start))

	// A "protein complex" query: a clique of 4 interacting proteins with
	// given GO-term labels, sampled from the network so it has answers.
	rng := rand.New(rand.NewSource(11))
	q := gen.GraphCliqueQuery(g, 4, rng)
	if q == nil {
		log.Fatal("no 4-clique found")
	}
	if err := q.Compile(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: 4-clique with labels")
	for _, n := range q.Motif.Nodes() {
		l, _ := q.ConstLabel(n.ID)
		fmt.Printf(" %s", l)
	}
	fmt.Println()

	run := func(name string, opt gqldb.Options) {
		opt.Exhaustive = true
		opt.Limit = 1000
		opt.CollectStats = true
		ms, st, err := gqldb.Match(q, g, ix, opt)
		if err != nil {
			log.Fatal(err)
		}
		total := st.RetrieveTime + st.RefineTime + st.OrderTime + st.SearchTime
		fmt.Printf("%-28s %4d matches  space 10^%5.1f -> 10^%5.1f  steps %6d  total %v\n",
			name, len(ms),
			gqldb.Log10Space(st.CandBaseline), gqldb.Log10Space(st.CandRefined),
			st.SearchSteps, total.Round(time.Microsecond))
	}

	run("baseline", gqldb.Baseline())
	run("+ profile pruning", gqldb.Options{Prune: gqldb.PruneProfile})
	run("+ refinement (Alg. 4.2)", gqldb.Options{Prune: gqldb.PruneProfile, Refine: true})
	run("+ optimized order (full)", gqldb.Optimized())
}
