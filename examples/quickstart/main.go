// Quickstart: build an attributed graph, declare a graph pattern in the
// GraphQL syntax, match it, and compose a new graph from the matches — the
// running example of §3 (Figures 4.7, 4.8, 4.9 and 4.11).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gqldb "gqldb"
)

func main() {
	// A small "paper" graph in the Figure 4.7 style.
	g := gqldb.NewGraph("paper1")
	g.Attrs = gqldb.TupleOf("inproceedings", "booktitle", "SIGMOD", "year", 2008)
	g.AddNode("v1", gqldb.TupleOf("", "title", "Graphs-at-a-time", "year", 2008))
	g.AddNode("v2", gqldb.TupleOf("author", "name", "He"))
	g.AddNode("v3", gqldb.TupleOf("author", "name", "Singh"))

	// The Figure 4.8 pattern, written in the query-language syntax: a node
	// named "He" and a node with year > 2000.
	p, err := gqldb.ParsePattern(`
		graph P {
			node v1 where name = "He";
			node v2 where year > 2000;
		};`)
	if err != nil {
		log.Fatal(err)
	}

	// Match: Definition 4.2 (subgraph isomorphism + predicate).
	mappings, _, err := gqldb.Match(p, g, nil, gqldb.Options{Exhaustive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern matched %d time(s)\n", len(mappings))
	for _, m := range mappings {
		for u, v := range m.Nodes {
			fmt.Printf("  Φ(P.%s) -> G.%s\n",
				p.Motif.Node(gqldb.NodeID(u)).Name, g.Node(v).Name)
		}
	}

	// Compose a new graph from each match — the Figure 4.11 template:
	// node a labelled by the matched author name, node b by the paper
	// title, with an edge between them.
	sel, err := gqldb.Select(p, gqldb.Collection{g}, gqldb.Options{Exhaustive: true})
	if err != nil {
		log.Fatal(err)
	}
	nameE, _ := gqldb.ParseExpr("P.v1.name")
	titleE, _ := gqldb.ParseExpr("P.v2.title")
	t := &gqldb.Template{Name: "T"}
	t.Members = append(t.Members,
		gqldb.TNode{Name: "a", Attrs: []gqldb.AttrTemplate{{Name: "label", E: nameE}}},
		gqldb.TNode{Name: "b", Attrs: []gqldb.AttrTemplate{{Name: "label", E: titleE}}},
		gqldb.TEdge{Name: "e1", From: []string{"a"}, To: []string{"b"}},
	)
	for _, m := range sel {
		out, err := t.Instantiate(map[string]gqldb.Operand{"P": gqldb.MatchedOperand(m)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("composed graph:\n%s\n", out)
	}
}
