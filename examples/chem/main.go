// Chem searches a large collection of small graphs — the paper's first
// graph-database category (§4: "a large collection of small graphs, e.g.,
// chemical compounds") and the introduction's first motivating query:
// "find all heterocyclic chemical compounds that contain a given aromatic
// ring and a side chain", with atoms as nodes and bonds as edges. The
// selection runs both sequentially and in parallel across the collection.
//
// Run with:
//
//	go run ./examples/chem
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	gqldb "gqldb"
)

func main() {
	compounds := generateCompounds(4000, 99)
	fmt.Printf("compound library: %d molecules\n", len(compounds))

	// Query: a six-membered ring with a nitrogen in it (heterocycle) and
	// an oxygen side chain attached to one ring atom.
	q := gqldb.NewPattern("Q")
	ring := make([]gqldb.NodeID, 6)
	ring[0] = q.LabelNode("n1", "N") // the hetero atom
	for i := 1; i < 6; i++ {
		ring[i] = q.LabelNode(fmt.Sprintf("c%d", i), "C")
	}
	for i := 0; i < 6; i++ {
		q.AddEdge("", ring[i], ring[(i+1)%6], nil, nil)
	}
	side := q.LabelNode("o1", "O")
	q.AddEdge("", ring[3], side, nil, nil)

	start := time.Now()
	seq, err := gqldb.Select(q, compounds, gqldb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	seqT := time.Since(start)

	start = time.Now()
	par, err := gqldb.SelectParallel(q, compounds, gqldb.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	parT := time.Since(start)

	if len(seq) != len(par) {
		log.Fatalf("parallel selection changed the answer: %d vs %d", len(par), len(seq))
	}
	fmt.Printf("heterocycles with O side chain: %d of %d compounds\n", len(seq), len(compounds))
	fmt.Printf("sequential: %v   parallel: %v\n", seqT, parT)
	if len(seq) > 0 {
		fmt.Printf("\nfirst hit (%s):\n%s\n", seq[0].G.Name, seq[0].G)
	}
}

// generateCompounds builds random small molecules: a backbone ring or
// chain of C/N atoms with O/C side chains.
func generateCompounds(n int, seed int64) gqldb.Collection {
	rng := rand.New(rand.NewSource(seed))
	atom := func(rng *rand.Rand) string {
		switch r := rng.Float64(); {
		case r < 0.70:
			return "C"
		case r < 0.85:
			return "N"
		case r < 0.95:
			return "O"
		default:
			return "S"
		}
	}
	out := make(gqldb.Collection, 0, n)
	for i := 0; i < n; i++ {
		g := gqldb.NewGraph(fmt.Sprintf("mol%05d", i))
		size := 5 + rng.Intn(4) // backbone of 5..8 atoms
		ids := make([]gqldb.NodeID, size)
		for j := 0; j < size; j++ {
			ids[j] = g.AddNode("", gqldb.TupleOf("atom", "label", atom(rng)))
		}
		for j := 1; j < size; j++ {
			g.AddEdge("", ids[j-1], ids[j], gqldb.TupleOf("bond", "order", 1))
		}
		if rng.Float64() < 0.6 { // close the backbone into a ring
			g.AddEdge("", ids[size-1], ids[0], gqldb.TupleOf("bond", "order", 1))
		}
		// Side chains.
		for s := rng.Intn(3); s > 0; s-- {
			at := g.AddNode("", gqldb.TupleOf("atom", "label", atom(rng)))
			g.AddEdge("", ids[rng.Intn(size)], at, gqldb.TupleOf("bond", "order", 1))
		}
		out = append(out, g)
	}
	return out
}
