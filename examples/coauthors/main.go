// Coauthors runs the Figure 4.12 query end to end: generate a DBLP-like
// collection of paper graphs, then build the co-authorship graph with a
// FLWR let-accumulator — each matched author pair is inserted with an edge,
// unifying authors by name so each appears once (Figure 4.13 semantics).
//
// Run with:
//
//	go run ./examples/coauthors
package main

import (
	"fmt"
	"log"

	gqldb "gqldb"
	"gqldb/internal/gen"
)

const query = `
graph P {
	node v1 <author>;
	node v2 <author>;
} where P.booktitle = "SIGMOD";

C := graph {};

for P exhaustive in doc("DBLP") let C := graph {
	graph C;
	node P.v1, P.v2;
	edge e1 (P.v1, P.v2);
	unify P.v1, C.v1 where P.v1.name = C.v1.name;
	unify P.v2, C.v2 where P.v2.name = C.v2.name;
};
`

func main() {
	papers := gen.DBLP(300, 80, []string{"SIGMOD", "VLDB", "ICDE"}, 42)
	fmt.Printf("generated %d papers\n", len(papers))

	res, err := gqldb.Run(query, gqldb.Store{"DBLP": papers})
	if err != nil {
		log.Fatal(err)
	}
	c := res.Vars["C"]
	fmt.Printf("co-authorship graph: %d authors, %d co-author edges\n",
		c.NumNodes(), c.NumEdges())

	// The most collaborative authors.
	best, bestDeg := "", -1
	for _, n := range c.Nodes() {
		if d := c.Degree(n.ID); d > bestDeg {
			bestDeg = d
			best = n.Attrs.GetOr("name").AsString()
		}
	}
	fmt.Printf("most collaborative SIGMOD author: %s (%d co-authors)\n", best, bestDeg)

	// Sanity: every author node must be unique by name (that is what the
	// unify clauses guarantee).
	seen := map[string]bool{}
	for _, n := range c.Nodes() {
		name := n.Attrs.GetOr("name").AsString()
		if seen[name] {
			log.Fatalf("duplicate author %s — unification failed", name)
		}
		seen[name] = true
	}
	fmt.Println("all authors unique: unification OK")
}
