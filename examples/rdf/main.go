// RDF runs the introduction's Semantic-Web example: "find all instances
// from an RDF graph where two departments of a company share the same
// shipping company", with the constraint that the departments share the
// same company attribute and the connecting edges are labelled "shipping".
// The result is reported as a single graph with departments as nodes and
// edges between departments that share a shipper — built by composing every
// match into an accumulator with unification.
//
// Run with:
//
//	go run ./examples/rdf
package main

import (
	"fmt"
	"log"

	gqldb "gqldb"
)

func main() {
	g := buildRDF()
	fmt.Printf("RDF graph: %d resources, %d triples\n", g.NumNodes(), g.NumEdges())

	// The query pattern: two department nodes of the same company, each
	// with a "shipping" edge to one shared shipper node.
	p := gqldb.NewPattern("P")
	d1 := p.AddNode("d1", gqldb.NewTuple("dept"), nil)
	d2 := p.AddNode("d2", gqldb.NewTuple("dept"), nil)
	s := p.AddNode("s", gqldb.NewTuple("shipper"), nil)
	shipping := gqldb.TupleOf("", "rel", "shipping")
	p.AddEdge("e1", d1, s, shipping, nil)
	p.AddEdge("e2", d2, s, shipping, nil)
	sameCompany, err := gqldb.ParseExpr(`d1.company = d2.company`)
	if err != nil {
		log.Fatal(err)
	}
	p.Where(sameCompany)

	sel, err := gqldb.Select(p, gqldb.Collection{g}, gqldb.Options{Exhaustive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches: %d (each unordered pair appears twice)\n", len(sel))

	// Compose the report graph: departments as nodes (unified by name),
	// one edge per shared shipper.
	nameA, _ := gqldb.ParseExpr("P.d1.name = C.a.name")
	nameB, _ := gqldb.ParseExpr("P.d2.name = C.b.name")
	via, _ := gqldb.ParseExpr("P.s.name")
	tmpl := &gqldb.Template{
		Name: "C",
		Members: []gqldb.TMember{
			gqldb.TGraph{Var: "C"},
			gqldb.TNode{Ref: []string{"P", "d1"}},
			gqldb.TNode{Ref: []string{"P", "d2"}},
			gqldb.TEdge{From: []string{"P", "d1"}, To: []string{"P", "d2"},
				Attrs: []gqldb.AttrTemplate{{Name: "via", E: via}}},
			gqldb.TUnify{A: []string{"P", "d1"}, B: []string{"C", "a"}, Where: nameA},
			gqldb.TUnify{A: []string{"P", "d2"}, B: []string{"C", "b"}, Where: nameB},
		},
	}
	acc := gqldb.NewGraph("C")
	for _, m := range sel {
		// Keep one direction of each pair.
		a, _ := m.NodeFor("d1")
		b, _ := m.NodeFor("d2")
		if a.ID > b.ID {
			continue
		}
		out, err := tmpl.Instantiate(map[string]gqldb.Operand{
			"P": gqldb.MatchedOperand(m),
			"C": gqldb.GraphOperand(acc),
		})
		if err != nil {
			log.Fatal(err)
		}
		acc = out
	}
	fmt.Printf("\nshared-shipper report graph:\n%s\n", acc)
}

// buildRDF assembles a small company/department/shipper graph.
func buildRDF() *gqldb.Graph {
	g := gqldb.NewGraph("rdf")
	dept := func(name, company string) gqldb.NodeID {
		return g.AddNode(name, gqldb.TupleOf("dept", "name", name, "company", company))
	}
	shipper := func(name string) gqldb.NodeID {
		return g.AddNode(name, gqldb.TupleOf("shipper", "name", name))
	}
	ship := gqldb.TupleOf("", "rel", "shipping")
	bill := gqldb.TupleOf("", "rel", "billing")

	sales := dept("acme_sales", "Acme")
	rnd := dept("acme_rnd", "Acme")
	hr := dept("acme_hr", "Acme")
	gxSales := dept("globex_sales", "Globex")
	gxOps := dept("globex_ops", "Globex")

	fast := shipper("FastShip")
	slow := shipper("SlowFreight")

	g.AddEdge("", sales, fast, ship)
	g.AddEdge("", rnd, fast, ship)
	g.AddEdge("", hr, slow, ship)
	g.AddEdge("", gxSales, slow, ship)
	g.AddEdge("", gxOps, slow, ship)
	g.AddEdge("", gxOps, fast, bill) // billing only: must not match
	return g
}
